package globalq

import (
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
)

// This file expresses the two §2.2 runqueue designs as machine-level
// scheduling disciplines, so the strawman is directly comparable to the
// CFS model in policy tournaments instead of living only in this
// package's analytic queueing model (globalq.go).
//
// Neither shim reproduces the synchronization tax — the simulated
// machine has no lock contention to model per context switch; that axis
// stays with RunOne/Experiment and the "globalq" campaign workload.
// What they do reproduce is each design's *placement* behaviour:
//
//   - SharedRunqueue: one logical queue that any idle core drains. The
//     hierarchical balancer is off (DisableBalance); instead, wakeups go
//     to the longest-idle core anywhere (else the shortest queue), and a
//     fast work-conservation sweep lets idle cores pull queued threads —
//     the "trivially work-conserving, nothing to balance" half of §2.2.
//   - PerCoreRunqueue: strictly static per-core queues. Threads are
//     distributed at fork and then never move: wakeups always return to
//     the previous core and the balancer is off — the pre-distributed
//     best case the analytic PerCoreQueue design assumes, minus the
//     rebalancing CFS layers on top. Any load imbalance is permanent,
//     which is exactly the behaviour tournaments should price.

// SweepEvery is the shared-queue work-conservation cadence: 1ms, the
// scheduler tick, so a stale placement survives at most one tick — far
// tighter than the 4ms balancer it replaces, as befits a design where
// dequeueing from the shared backlog is a constant-time pop.
const SweepEvery = sim.Millisecond

// SharedRunqueue emulates the shared global runqueue on a machine-level
// scheduler. Attach with AttachShared; pair with a sched.Config that has
// DisableBalance set (SharedConfig) so the hierarchical balancer does
// not compete with the discipline.
type SharedRunqueue struct {
	s       *sched.Scheduler
	stopped bool

	// Steals counts work-conservation pulls by idle cores.
	Steals uint64
	// Sweeps counts sweep passes.
	Sweeps uint64
}

// AttachShared installs the shared-queue discipline on s and starts its
// work-conservation sweep.
func AttachShared(s *sched.Scheduler) *SharedRunqueue {
	g := &SharedRunqueue{s: s}
	s.SetPlacementPolicy(g)
	s.Engine().After(SweepEvery, g.sweep)
	return g
}

// Detach removes the discipline; the sweep stops at its next firing.
func (g *SharedRunqueue) Detach() {
	g.stopped = true
	g.s.SetPlacementPolicy(nil)
}

// PlaceWakeup implements sched.PlacementPolicy: a waking thread goes to
// the next free "executor" of the shared queue — the longest-idle
// allowed core, else the allowed core with the shortest queue (lowest id
// on ties). There is no locality term at all: a shared queue has no
// notion of a thread's home core.
func (g *SharedRunqueue) PlaceWakeup(t *sched.Thread, waker *sched.Thread,
	prev topology.CoreID, allowed sched.CPUSet) (topology.CoreID, bool) {
	if cpu, ok := g.s.LongestIdle(allowed); ok {
		return cpu, true
	}
	best := topology.CoreID(-1)
	bestQ := 0
	allowed.ForEach(func(c topology.CoreID) {
		if q := g.s.NrRunning(c); best < 0 || q < bestQ {
			best, bestQ = c, q
		}
	})
	return best, best >= 0
}

// sweep restores work conservation: every idle core pulls one thread
// from the longest queue it may steal from. With a real shared queue an
// idle core would dequeue immediately; the sweep bounds that gap to
// SweepEvery of virtual time.
func (g *SharedRunqueue) sweep() {
	if g.stopped {
		return
	}
	g.Sweeps++
	online := g.s.OnlineCPUs()
	for _, idle := range online {
		if !g.s.IsIdle(idle) {
			continue
		}
		src := topology.CoreID(-1)
		bestQ := 0
		for _, busy := range online {
			if busy == idle {
				continue
			}
			if q := g.s.Queued(busy); q > bestQ && g.s.CanSteal(idle, busy) {
				src, bestQ = busy, q
			}
		}
		if src >= 0 && g.s.StealOne(idle, src) {
			g.Steals++
		}
	}
	g.s.Engine().After(SweepEvery, g.sweep)
}

// PerCoreRunqueue emulates strictly static per-core runqueues: wakeups
// always return to the previous core. Pair with PerCoreConfig, which
// disables the balancer, so queue membership is fixed at fork time.
type PerCoreRunqueue struct{ s *sched.Scheduler }

// AttachPerCore installs the static per-core discipline on s.
func AttachPerCore(s *sched.Scheduler) *PerCoreRunqueue {
	g := &PerCoreRunqueue{s: s}
	s.SetPlacementPolicy(g)
	return g
}

// Detach removes the discipline.
func (g *PerCoreRunqueue) Detach() { g.s.SetPlacementPolicy(nil) }

// PlaceWakeup implements sched.PlacementPolicy: the thread's queue is
// its previous core, unconditionally. (The caller guarantees prev is in
// allowed, falling back to the first allowed core when hotplug removed
// it — the one case where a static queue must move.)
func (g *PerCoreRunqueue) PlaceWakeup(t *sched.Thread, waker *sched.Thread,
	prev topology.CoreID, allowed sched.CPUSet) (topology.CoreID, bool) {
	return prev, true
}

// SharedConfig is the scheduler configuration the shared-queue
// discipline runs under: kernel-default tunables with the hierarchical
// balancer and NOHZ machinery off (the discipline replaces both).
func SharedConfig() sched.Config {
	c := sched.DefaultConfig()
	c.DisableBalance = true
	c.NOHZ = false
	return c
}

// PerCoreConfig is the static per-core configuration: like SharedConfig
// but the absence of balancing is the point rather than a replacement —
// nothing moves a thread off the queue it forked onto.
func PerCoreConfig() sched.Config {
	return SharedConfig()
}
