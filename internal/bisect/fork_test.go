package bisect

import (
	"bytes"
	"testing"
)

// TestForkedMatchesSequential is the tentpole's correctness gate: the
// checkpoint/fork runner must produce byte-for-byte the artifact of the
// sequential runner on the smoke sweep — every lattice point, whether it
// was simulated on a fork or collapsed from a never-fired-probe run,
// carries exactly the bytes a from-scratch simulation produces.
func TestForkedMatchesSequential(t *testing.T) {
	seq := smokeWithSeed()
	seq.NoFork = true
	rs, err := Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	forked := smokeWithSeed()
	rf, err := Run(forked)
	if err != nil {
		t.Fatal(err)
	}
	a, err := rs.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := rf.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		for i := range rs.Campaign.Results {
			sr, fr := rs.Campaign.Results[i], rf.Campaign.Results[i]
			if sr.Key != fr.Key || sr.MakespanNs != fr.MakespanNs ||
				sr.Events != fr.Events || sr.Counters != fr.Counters ||
				sr.Violations != fr.Violations {
				t.Errorf("first diverging result %q:\n seq: events=%d makespan=%d violations=%d\nfork: events=%d makespan=%d violations=%d",
					sr.Key, sr.Events, sr.MakespanNs, sr.Violations,
					fr.Events, fr.MakespanNs, fr.Violations)
				break
			}
		}
		t.Fatal("forked sweep bytes differ from sequential sweep")
	}
}
