// Package bisect reasons over campaign results instead of producing
// them: it fans the full 2^4 bug-fix lattice (every subset of the
// paper's four fixes) through the campaign worker pool for each
// (topology, workload, seed) cell, then walks the lattice to name, per
// idle-while-overloaded episode class, the minimal fix set(s) that
// eliminate it — turning the paper's Tables 1–4 attribution narrative
// ("this bug is fixed by that patch") into machine-checked evidence.
//
// Three verdicts come out of the walk, all memoized over the 16 lattice
// points of a cell:
//
//   - episode verdicts: a fix set is clean when it zeroes every episode
//     class the sanity checker confirmed under the studied kernel
//     (fx-none); the minimal clean sets are the lattice's minimal
//     elements, computed by a bottom-up walk that propagates
//     "some subset is already clean" through the Hasse diagram;
//   - interaction reports for non-monotone edges: pairs (S, S+fix)
//     where adding a fix *re-introduces* idle-while-overloaded time, as
//     the Group Imbalance min-load fix does under affinity pinning
//     (the ROADMAP anomaly, reported with the classes it re-introduces);
//   - performance verdicts: the minimal fix sets whose makespan lands
//     within a tolerance of the best lattice point — the attribution
//     signal for pathologies like §3.3's TPC-H stacking whose episodes
//     are too short for invariant confirmation but whose latency cost
//     is very real.
//
// The bisect artifact embeds the underlying campaign artifact, so the
// byte-identical-for-any-worker-count guarantee carries over and
// campaign.Compare keeps working for baseline regression gates.
package bisect

import (
	"repro/internal/campaign"
	"repro/internal/checker"
	"repro/internal/sim"
)

// Options declares a bisection sweep: the non-config dimensions of the
// matrix (the configs are always the 16 lattice points) plus analysis
// tuning.
type Options struct {
	Topologies []campaign.TopologySpec
	Workloads  []campaign.Workload
	Seeds      []int64

	// Scale multiplies workload sizes (0 = 1.0).
	Scale float64
	// Horizon bounds each scenario in virtual time (0 = 200s).
	Horizon sim.Time
	// Workers sizes the campaign worker pool (0 = GOMAXPROCS).
	Workers int
	// BaseSeed perturbs every scenario's derived engine seed.
	BaseSeed int64
	// StreakK overrides the wakeup-streak threshold (0 =
	// latency.DefaultStreakK). Only Run consults it; Analyze reads the
	// stamped threshold from the artifact.
	StreakK int

	// Checker is the sanity-checker lens the sweep runs under. The zero
	// value uses a 20ms check interval with a 15ms monitoring window —
	// denser than the campaign default (100ms/50ms) because the Group
	// Imbalance episodes of §3.1 persist for tens of milliseconds at
	// experiment scale; the window still filters shorter transients as
	// legal. 15ms is a calibration: at 10ms, single borderline
	// confirmations (one isolated window, never recurring) leak through
	// on a minority of seeds and destabilize per-seed verdicts, while at
	// 15ms every persistent pathology still confirms (the §3.1 and
	// Table 1 baselines keep multi-episode signatures). Only Run
	// consults it: Analyze reads the lens from the campaign artifact,
	// which records what actually ran.
	Checker checker.Config

	// PerfTolerancePct is the makespan slack for the performance
	// verdict: a fix set qualifies when its makespan is within this
	// percentage of the best lattice point (0 = 10%).
	PerfTolerancePct float64

	// LatencyTolerancePct is the relative slack of the latency verdict:
	// a fix set qualifies when its p99 wakeup-to-run delay is within
	// this percentage of the best lattice point (0 = 10%).
	LatencyTolerancePct float64
	// LatencySlack is the absolute slack added on top — without it a
	// best p99 of zero (every wakeup ran immediately, the usual result
	// under the OoW fix) would demand bit-exact zeroes from every
	// qualifying set. Tails under this floor are treated as equally
	// good (0 = 100µs).
	LatencySlack sim.Time

	// Explain attaches the causal-observability layer (see
	// campaign.RunnerOpts.Explain) to every lattice point: decision
	// provenance plus per-episode counterfactual replays. Analyze then
	// cross-checks each cell's per-episode single-fix attributions
	// against the lattice's minimal fix sets (Cell.ExplainCheck). Forces
	// the sequential runner for affected cells — the explain hooks
	// cannot ride the checkpoint/fork fast path.
	Explain bool

	// OnResult, when non-nil, is passed through to the campaign runner
	// for progress telemetry; like campaign.RunnerOpts.OnResult it never
	// influences the report (see that field for the contract).
	OnResult func(campaign.Result)

	// NoFork disables the checkpoint/fork runner and simulates every
	// lattice point from scratch — the escape hatch for validating that
	// forked and sequential sweeps produce identical bytes (they must;
	// `make bisect-smoke` asserts it), and for debugging the fork
	// machinery itself.
	NoFork bool
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Horizon == 0 {
		o.Horizon = 200 * sim.Second
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1}
	}
	if o.Checker.S == 0 {
		o.Checker.S = 20 * sim.Millisecond
	}
	if o.Checker.M == 0 {
		o.Checker.M = 15 * sim.Millisecond
	}
	if o.PerfTolerancePct == 0 {
		o.PerfTolerancePct = 10
	}
	if o.LatencyTolerancePct == 0 {
		o.LatencyTolerancePct = 10
	}
	if o.LatencySlack == 0 {
		o.LatencySlack = 100 * sim.Microsecond
	}
	return o
}

// Matrix expands the options into the campaign matrix of the sweep: the
// cross-product of the cells with the 16 lattice configurations.
func (o Options) Matrix() campaign.Matrix {
	o = o.withDefaults()
	return campaign.Matrix{
		Topologies: o.Topologies,
		Workloads:  o.Workloads,
		Configs:    campaign.LatticeConfigs(),
		Seeds:      o.Seeds,
		Scale:      o.Scale,
		Horizon:    o.Horizon,
	}
}

// Run executes the sweep on the campaign worker pool and analyzes it.
// Like campaign artifacts, the report is byte-identical for any worker
// count and scenario order. By default each cell's 16 lattice points run
// on the checkpoint/fork runner (campaign.RunForked), which shares one
// t=0 world per cell and copies the results of lattice points whose
// extra fixes provably never fired; NoFork forces the sequential runner.
// Both produce identical bytes.
func Run(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	runner := campaign.RunForked
	if opts.NoFork {
		runner = campaign.Run
	}
	c, err := runner(opts.Matrix(), campaign.RunnerOpts{
		Workers:  opts.Workers,
		BaseSeed: opts.BaseSeed,
		Checker:  opts.Checker,
		StreakK:  opts.StreakK,
		Explain:  opts.Explain,
		OnResult: opts.OnResult,
	})
	if err != nil {
		return nil, err
	}
	return Analyze(c, opts)
}

// --- presets -------------------------------------------------------------

// SmokeOptions is the small CI sweep: the paper's Bulldozer machine, the
// Table 1 pinned run, the §3.1 make+R mix, and the §3.3 database — 48
// scenarios that exhibit the Group Construction and Group Imbalance
// episode classes, the min-load interaction anomaly, and (via TPC-H's
// wakeup-placement streaks) the episode-level overload-on-wakeup
// witness whose episodes are too short for checker confirmation.
func SmokeOptions() Options {
	o := Options{
		Topologies: campaign.MustTopologies("bulldozer8"),
		Workloads:  campaign.MustWorkloads("nas-pin:lu", "make2r", "tpch"),
		Seeds:      []int64{1},
		Scale:      0.5,
		Horizon:    100 * sim.Second,
	}
	return o.withDefaults()
}

// DefaultOptions covers all four pathologies on both paper machines:
// 128 scenarios.
func DefaultOptions() Options {
	o := Options{
		Topologies: campaign.MustTopologies("bulldozer8", "machine32"),
		Workloads:  campaign.MustWorkloads("make2r", "nas-pin:lu", "nas-hotplug:lu", "tpch"),
		Seeds:      []int64{1},
		Scale:      0.5,
	}
	return o.withDefaults()
}

// FullOptions adds a control topology, the unpinned NAS run, and a
// second seed: 480 scenarios.
func FullOptions() Options {
	o := Options{
		Topologies: campaign.MustTopologies("bulldozer8", "machine32", "twonode8"),
		Workloads:  campaign.MustWorkloads("make2r", "nas-pin:lu", "nas-hotplug:lu", "tpch", "nas:lu"),
		Seeds:      []int64{1, 2},
		Scale:      0.5,
	}
	return o.withDefaults()
}

// OptionsByName resolves a preset name.
func OptionsByName(name string) (Options, bool) {
	switch name {
	case "smoke":
		return SmokeOptions(), true
	case "default":
		return DefaultOptions(), true
	case "full":
		return FullOptions(), true
	}
	return Options{}, false
}
