package bisect

import (
	"reflect"
	"testing"

	"repro/internal/campaign"
)

// TestMinLoadAnomalySweep is the dedicated sweep ROADMAP asked for, and
// the characterization test of its verdict: under affinity pinning the
// Group Imbalance fix (min-load comparison, §3.1) re-introduces
// idle-while-overloaded time even on top of the Group Construction fix.
//
// Verdict (recorded in ROADMAP): this is a real modeled pathology, not
// a simulator artifact. With `numactl --cpunodebind=1,2` pinning, every
// overlapping machine-level scheduling group contains nodes whose cores
// are idle because the pinned application cannot run there. Their load
// is 0, so the min-load metric of every group — including the one
// holding the overloaded node — evaluates to 0, the balancer sees no
// group as busier than any other, and the imbalance persists. The
// checker classifies these episodes as group-imbalance (the balancer's
// own metric masks the imbalance), and the average-load comparison the
// fix replaced does not suffer from it, because a crowded node keeps a
// nonzero average. The paper's fixes were evaluated on unpinned
// workloads for §3.1; the interaction only appears when pinning and the
// min-load comparison meet — exactly the combinational corner the
// lattice walk exists to find.
func TestMinLoadAnomalySweep(t *testing.T) {
	o := smokeWithSeed()
	o.Workloads = campaign.MustWorkloads("nas-pin:lu")
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	cell := r.Cell("bulldozer8", "nas-pin:lu", 1)
	if cell == nil {
		t.Fatal("cell missing")
	}

	find := func(f FixSet) int64 {
		res := r.Campaign.Result("bulldozer8/nas-pin:lu/" + f.ConfigName() + "/s1")
		if res == nil {
			t.Fatalf("missing lattice point %s", f.ConfigName())
		}
		return res.IdleWhileOverloadedNs
	}

	gc := find(FixGC)
	gigc := find(FixGI | FixGC)
	window := r.CheckerMNs

	// Characterization: gc alone leaves at most startup transients; the
	// gi+gc combination re-introduces an order of magnitude more.
	if gc > 2*window {
		t.Errorf("fx-gc idle-while-overloaded = %dns, want <= 2 monitoring windows", gc)
	}
	if gigc < 10*window {
		t.Errorf("fx-gi+gc idle-while-overloaded = %dns, want >= 10 windows (the anomaly)", gigc)
	}
	if gigc <= gc {
		t.Errorf("anomaly gone: fx-gi+gc (%d) <= fx-gc (%d); update ROADMAP's verdict", gigc, gc)
	}

	// The re-introduced episodes carry the group-imbalance signature:
	// the min-load metric is what masks the imbalance.
	combined := r.Campaign.Result("bulldozer8/nas-pin:lu/fx-gi+gc/s1")
	if combined.EpisodeClasses["group-imbalance"] == 0 {
		t.Errorf("re-introduced episodes classified %v, want group-imbalance", combined.EpisodeClasses)
	}

	// And the lattice walk reports it: the minimal fix set stays {gc},
	// with a non-monotone edge {gc}+gi.
	if !reflect.DeepEqual(cell.MinimalFixSets, []string{"gc"}) {
		t.Errorf("minimal fix sets = %v, want [gc]", cell.MinimalFixSets)
	}
	found := false
	for _, in := range cell.Interactions {
		if in.Base == "gc" && in.Added == "gi" {
			found = true
		}
	}
	if !found {
		t.Errorf("interaction report misses the {gc}+gi edge: %+v", cell.Interactions)
	}
}

// TestSeedSweepStability runs the smoke lattice across seeds 1..8 and
// asserts every (topology, workload) verdict — minimal fix sets,
// per-class attributions and interaction edges — is seed-stable. An
// unstable cell fails with the full signature-by-seed breakdown rather
// than silently passing or silently flaking.
func TestSeedSweepStability(t *testing.T) {
	o := smokeWithSeed()
	o.Seeds = []int64{1, 2, 3, 4, 5, 6, 7, 8}
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	stabilities := r.SeedStability()
	if len(stabilities) != 3 {
		t.Fatalf("stability groups = %d, want 3", len(stabilities))
	}
	for _, st := range stabilities {
		if len(st.Seeds) != len(o.Seeds) {
			t.Errorf("%s/%s covered seeds %v, want %v", st.Topology, st.Workload, st.Seeds, o.Seeds)
		}
		if st.Workload == "tpch" {
			// The §3.3 cell is the reason the streak/latency axes exist:
			// its episodes are too short for checker confirmation, and its
			// makespan verdict is seed-UNSTABLE (several fix sets tie
			// within the perf tolerance, differently per seed). The
			// episode-level witnesses must be what the makespan is not —
			// stable at {oow} for every seed — and that is asserted below,
			// outside the full-signature check.
			continue
		}
		if st.Stable {
			continue
		}
		t.Errorf("%s/%s verdict is seed-unstable across %d signatures:", st.Topology, st.Workload, len(st.Signatures))
		for sig, seeds := range st.Signatures {
			t.Errorf("  seeds %v: %s", seeds, sig)
		}
	}

	// TPC-H: streak and latency verdicts are {oow} at every seed.
	for _, seed := range o.Seeds {
		cell := r.Cell("bulldozer8", "tpch", seed)
		if cell == nil {
			t.Fatalf("tpch cell for seed %d missing", seed)
		}
		if cell.BaselineStreaks == 0 {
			t.Errorf("tpch seed %d: no baseline wakeup streaks (witness lost)", seed)
		}
		if !reflect.DeepEqual(cell.StreakMinimalFixSets, []string{"oow"}) {
			t.Errorf("tpch seed %d: streak minimal sets = %v, want [oow]", seed, cell.StreakMinimalFixSets)
		}
		if !reflect.DeepEqual(cell.LatencyMinimalFixSets, []string{"oow"}) {
			t.Errorf("tpch seed %d: latency minimal sets = %v, want [oow]", seed, cell.LatencyMinimalFixSets)
		}
	}
}
