package bisect

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/campaign"
)

func TestFixSetMatchesLattice(t *testing.T) {
	configs := campaign.LatticeConfigs()
	if len(configs) != NumSets {
		t.Fatalf("lattice has %d configs, want %d", len(configs), NumSets)
	}
	for mask, spec := range configs {
		f := FixSet(mask)
		if f.ConfigName() != spec.Name {
			t.Errorf("mask %d: ConfigName = %q, campaign name = %q", mask, f.ConfigName(), spec.Name)
		}
		if spec.Config.Features != f.Features() {
			t.Errorf("mask %d: features diverge: %+v vs %+v", mask, spec.Config.Features, f.Features())
		}
		got, ok := ParseConfigName(spec.Name)
		if !ok || got != f {
			t.Errorf("ParseConfigName(%q) = %v, %v; want %v", spec.Name, got, ok, f)
		}
		if campaign.LatticeConfigName(mask) != spec.Name {
			t.Errorf("LatticeConfigName(%d) = %q, want %q", mask, campaign.LatticeConfigName(mask), spec.Name)
		}
		// The lattice names resolve through the campaign registry too.
		if _, ok := campaign.ConfigByName(spec.Name); !ok {
			t.Errorf("ConfigByName(%q) not found", spec.Name)
		}
	}
	names := campaign.LatticeFixNames()
	for i, bit := range Singles() {
		if bit.String() != names[i] {
			t.Errorf("fix bit %d: name %q, campaign name %q", i, bit.String(), names[i])
		}
	}
}

func TestFixSetBasics(t *testing.T) {
	f := FixGI | FixOOW
	if f.String() != "gi+oow" {
		t.Errorf("String = %q", f.String())
	}
	if FixSet(0).String() != "none" || FixSet(0).ConfigName() != "fx-none" {
		t.Error("empty set misrendered")
	}
	if !f.Has(FixGI) || f.Has(FixGC) || !FixGI.SubsetOf(f) || f.SubsetOf(FixGI) {
		t.Error("Has/SubsetOf wrong")
	}
	if f.Count() != 2 || FixSet(15).Count() != 4 {
		t.Error("Count wrong")
	}
	if _, ok := Parse("gi+bogus"); ok {
		t.Error("Parse accepted bogus fix")
	}
	if _, ok := Parse("gi+gi"); ok {
		t.Error("Parse accepted duplicate fix")
	}
	if _, ok := ParseConfigName("fix-gi"); ok {
		t.Error("ParseConfigName accepted non-lattice name")
	}
}

// TestMinimalSets exercises the lattice walk directly, including
// non-monotone families where an ok set has ok supersets missing.
func TestMinimalSets(t *testing.T) {
	cases := []struct {
		name string
		ok   func(FixSet) bool
		want []FixSet
	}{
		{"monotone-single", func(f FixSet) bool { return f.Has(FixGC) }, []FixSet{FixGC}},
		{"two-singletons", func(f FixSet) bool { return f.Has(FixGI) || f.Has(FixOOW) },
			[]FixSet{FixGI, FixOOW}},
		{"pair-required", func(f FixSet) bool { return f.Has(FixGI | FixMD) }, []FixSet{FixGI | FixMD}},
		{"empty-family", func(f FixSet) bool { return false }, nil},
		{"all-ok", func(f FixSet) bool { return true }, []FixSet{0}},
		// Non-monotone: gc alone works, gi spoils it unless md also set.
		{"non-monotone", func(f FixSet) bool {
			return f.Has(FixGC) && (!f.Has(FixGI) || f.Has(FixMD))
		}, []FixSet{FixGC}},
	}
	for _, tc := range cases {
		got := minimalSets(tc.ok)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: minimalSets = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestSmokeVerdicts is the end-to-end acceptance check: the smoke
// preset must attribute the Table 1 pinning pathology to the Scheduling
// Group Construction fix, the §3.1 make+R pathology to the Group
// Imbalance fix, and surface the min-load interaction anomaly.
func TestSmokeVerdicts(t *testing.T) {
	r, err := Run(smokeWithSeed())
	if err != nil {
		t.Fatal(err)
	}

	pin := r.Cell("bulldozer8", "nas-pin:lu", 1)
	if pin == nil {
		t.Fatalf("nas-pin cell missing:\n%s", r.FormatSummary())
	}
	if pin.BaselineViolations == 0 || pin.BaselineClasses["group-construction"] == 0 {
		t.Errorf("pinned baseline shows no group-construction episodes: %+v", pin)
	}
	if !reflect.DeepEqual(pin.MinimalFixSets, []string{"gc"}) {
		t.Errorf("pinned minimal fix sets = %v, want [gc]", pin.MinimalFixSets)
	}
	// The ROADMAP anomaly: adding the min-load fix to a clean gc set
	// re-introduces idle-while-overloaded time, classified as a
	// group-imbalance signature (the min-load metric masks the
	// imbalance when pinned-away nodes contain idle cores).
	foundAnomaly := false
	for _, in := range pin.Interactions {
		if in.Base == "gc" && in.Added == "gi" {
			foundAnomaly = true
			if in.Classes["group-imbalance"] == 0 {
				t.Errorf("anomaly edge has classes %v, want group-imbalance", in.Classes)
			}
			if in.CombinedIdleNs <= in.BaseIdleNs {
				t.Errorf("anomaly edge not a regression: %d -> %d", in.BaseIdleNs, in.CombinedIdleNs)
			}
		}
	}
	if !foundAnomaly {
		t.Errorf("min-load anomaly edge {gc}+gi missing: %+v", pin.Interactions)
	}

	mk := r.Cell("bulldozer8", "make2r", 1)
	if mk == nil {
		t.Fatal("make2r cell missing")
	}
	if mk.BaselineClasses["group-imbalance"] == 0 {
		t.Errorf("make2r baseline shows no group-imbalance episodes: %+v", mk.BaselineClasses)
	}
	if !containsSet(mk.MinimalFixSets, "gi") {
		t.Errorf("make2r minimal fix sets = %v, want gi included", mk.MinimalFixSets)
	}
}

// TestTPCHEpisodeWitness pins the ROADMAP item this axis exists for:
// TPC-H's overload-on-wakeup episodes are too short for checker
// confirmation at any lens that still filters legal transients, so the
// cell's baseline is episode-clean — yet the wakeup-placement streak
// and the p99 wakeup-delay witnesses both attribute it to {oow},
// giving Table 2 an episode-level verdict instead of a makespan-only
// one.
func TestTPCHEpisodeWitness(t *testing.T) {
	o := smokeWithSeed()
	o.Workloads = campaign.MustWorkloads("tpch")
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	cell := r.Cell("bulldozer8", "tpch", 1)
	if cell == nil {
		t.Fatalf("tpch cell missing:\n%s", r.FormatSummary())
	}
	if cell.BaselineViolations != 0 {
		t.Errorf("tpch baseline has %d confirmed episodes; the witness test assumes it is checker-clean",
			cell.BaselineViolations)
	}
	if cell.BaselineStreaks == 0 || cell.BaselineLongestStreak < r.StreakK {
		t.Fatalf("no streak witness: streaks=%d longest=%d (K=%d)",
			cell.BaselineStreaks, cell.BaselineLongestStreak, r.StreakK)
	}
	if !reflect.DeepEqual(cell.StreakMinimalFixSets, []string{"oow"}) {
		t.Errorf("streak minimal sets = %v, want [oow]", cell.StreakMinimalFixSets)
	}
	if !reflect.DeepEqual(cell.LatencyMinimalFixSets, []string{"oow"}) {
		t.Errorf("latency minimal sets = %v, want [oow]", cell.LatencyMinimalFixSets)
	}
	if cell.LatencyBestSet == "" {
		t.Error("latency verdict missing")
	}
	// The human-readable report surfaces both witnesses.
	sum := r.FormatSummary()
	for _, want := range []string{"wake streaks", "latency: best"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary misses %q:\n%s", want, sum)
		}
	}
	// Pre-latency artifacts (no digests, no streak stamps) must not
	// grow phantom verdicts: strip the new fields and re-analyze.
	stripped := *r.Campaign
	stripped.StreakK = 0
	stripped.Results = append([]campaign.Result(nil), r.Campaign.Results...)
	for i := range stripped.Results {
		stripped.Results[i].WakeLatency = nil
		stripped.Results[i].RunqWait = nil
		stripped.Results[i].WakeStreaks = nil
	}
	r2, err := Analyze(&stripped, o)
	if err != nil {
		t.Fatal(err)
	}
	cell2 := r2.Cell("bulldozer8", "tpch", 1)
	if cell2.BaselineStreaks != 0 || cell2.StreakMinimalFixSets != nil || cell2.LatencyBestSet != "" {
		t.Errorf("pre-latency artifact grew latency verdicts: %+v", cell2)
	}
}

func containsSet(sets []string, want string) bool {
	for _, s := range sets {
		if s == want {
			return true
		}
	}
	return false
}

// smokeWithSeed pins the smoke preset's base seed so tests and the CI
// artifact agree.
func smokeWithSeed() Options {
	o := SmokeOptions()
	o.BaseSeed = 42
	return o
}

// tinyOptions is a single-workload lattice (16 scenarios) for the
// property tests that re-run the sweep several times.
func tinyOptions() Options {
	o := smokeWithSeed()
	o.Workloads = campaign.MustWorkloads("make2r")
	return o
}

// TestReportDeterminism is the property test over the lattice artifact:
// byte-identical for workers 1, 4 and NumCPU, and for shuffled scenario
// order.
func TestReportDeterminism(t *testing.T) {
	var artifacts [][]byte
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		o := tinyOptions()
		o.Workers = workers
		r, err := Run(o)
		if err != nil {
			t.Fatal(err)
		}
		data, err := r.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		artifacts = append(artifacts, data)
	}
	for i := 1; i < len(artifacts); i++ {
		if !bytes.Equal(artifacts[0], artifacts[i]) {
			t.Fatalf("bisect artifact differs across worker counts (run %d)", i)
		}
	}

	// Shuffled scenario order through the campaign layer, re-analyzed.
	o := tinyOptions()
	scs := o.Matrix().Scenarios()
	rand.New(rand.NewSource(11)).Shuffle(len(scs), func(i, j int) {
		scs[i], scs[j] = scs[j], scs[i]
	})
	c, err := campaign.RunScenarios(scs, campaign.RunnerOpts{
		Workers: 4, BaseSeed: o.BaseSeed, Checker: o.Checker,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Analyze(c, o)
	if err != nil {
		t.Fatal(err)
	}
	data, err := r.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(artifacts[0], data) {
		t.Fatal("bisect artifact depends on scenario order")
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	o := tinyOptions()
	o.Workers = 4
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bisect.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := r.EncodeJSON()
	b, _ := loaded.EncodeJSON()
	if !bytes.Equal(a, b) {
		t.Fatal("artifact did not round-trip")
	}
	// The embedded campaign stays loadable by the campaign layer's
	// schema (baseline comparisons reuse campaign.Compare).
	if loaded.Campaign == nil || loaded.Campaign.Version != campaign.Version {
		t.Fatal("embedded campaign artifact missing or mis-versioned")
	}
	cmp := campaign.Compare(loaded.Campaign, r.Campaign, 2)
	if !cmp.Clean() {
		t.Fatalf("self-comparison not clean:\n%s", campaign.FormatComparison(cmp))
	}
}

func TestAnalyzeErrors(t *testing.T) {
	// A campaign with no lattice configs at all.
	m := campaign.SmokeMatrix()
	c, err := campaign.Run(m, campaign.RunnerOpts{Workers: 4, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(c, Options{}); err == nil {
		t.Error("Analyze accepted a campaign without lattice results")
	}

	// A lattice with a hole.
	o := tinyOptions()
	r, err := campaign.Run(o.Matrix(), campaign.RunnerOpts{Workers: 4, BaseSeed: 42, Checker: o.Checker})
	if err != nil {
		t.Fatal(err)
	}
	var holed []campaign.Result
	for _, res := range r.Results {
		if res.Config != "fx-gc" {
			holed = append(holed, res)
		}
	}
	r.Results = holed
	if _, err := Analyze(r, o); err == nil {
		t.Error("Analyze accepted an incomplete lattice")
	}
}

func TestOptionsByName(t *testing.T) {
	for _, name := range []string{"smoke", "default", "full"} {
		o, ok := OptionsByName(name)
		if !ok || len(o.Topologies) == 0 || len(o.Workloads) == 0 {
			t.Errorf("preset %q broken", name)
		}
		if o.Matrix().Size()%NumSets != 0 {
			t.Errorf("preset %q matrix size %d not a lattice multiple", name, o.Matrix().Size())
		}
	}
	if _, ok := OptionsByName("bogus"); ok {
		t.Error("bogus preset resolved")
	}
}
