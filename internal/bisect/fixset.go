package bisect

import (
	"strings"

	"repro/internal/campaign"
	"repro/internal/sched"
)

// FixSet is a subset of the paper's four bug fixes, encoded as a 4-bit
// mask. The bit order is the canonical lattice order owned by
// campaign.LatticeConfigs: FixSet(m) corresponds to LatticeConfigs()[m],
// and all naming and feature expansion delegates to the campaign
// package so there is a single source of truth.
type FixSet uint8

// The four fixes, one bit each (campaign's canonical lattice order).
const (
	FixGI  FixSet = 1 << iota // Group Imbalance fix (§3.1): min-load comparison
	FixGC                     // Scheduling Group Construction fix (§3.2): per-core groups
	FixOOW                    // Overload-on-Wakeup fix (§3.3): idle-core wakeup placement
	FixMD                     // Missing Scheduling Domains fix (§3.4): hotplug regeneration

	// NumSets is the size of the lattice, 2^4.
	NumSets = 16
)

// All enumerates the whole lattice in mask order: the studied kernel
// (0) first, the fully fixed kernel (NumSets-1) last.
func All() []FixSet {
	out := make([]FixSet, NumSets)
	for i := range out {
		out[i] = FixSet(i)
	}
	return out
}

// Singles enumerates the four single-fix sets in canonical order.
func Singles() []FixSet {
	return []FixSet{FixGI, FixGC, FixOOW, FixMD}
}

// Has reports whether f contains every fix of g.
func (f FixSet) Has(g FixSet) bool { return f&g == g }

// SubsetOf reports whether every fix of f is in g.
func (f FixSet) SubsetOf(g FixSet) bool { return g.Has(f) }

// Count returns the number of fixes enabled.
func (f FixSet) Count() int {
	n := 0
	for g := f; g != 0; g &= g - 1 {
		n++
	}
	return n
}

// String renders the set with short fix names: "none", "gc", "gi+oow".
func (f FixSet) String() string {
	return strings.TrimPrefix(f.ConfigName(), "fx-")
}

// ConfigName returns the campaign configuration name of the set
// ("fx-none", "fx-gi+oow", ...).
func (f FixSet) ConfigName() string { return campaign.LatticeConfigName(int(f)) }

// ParseConfigName maps a lattice config name back to its FixSet.
func ParseConfigName(name string) (FixSet, bool) {
	s, ok := strings.CutPrefix(name, "fx-")
	if !ok {
		return 0, false
	}
	return Parse(s)
}

// Parse maps a short-name rendering ("none", "gi+gc") back to a FixSet.
func Parse(s string) (FixSet, bool) {
	if s == "none" {
		return 0, true
	}
	names := campaign.LatticeFixNames()
	var f FixSet
	for _, part := range strings.Split(s, "+") {
		bit := FixSet(0)
		for i, name := range names {
			if part == name {
				bit = 1 << i
				break
			}
		}
		if bit == 0 || f.Has(bit) {
			return 0, false
		}
		f |= bit
	}
	return f, true
}

// Features expands the set into scheduler feature toggles, via the
// campaign lattice.
func (f FixSet) Features() sched.Features {
	return campaign.LatticeConfigs()[f].Config.Features
}
