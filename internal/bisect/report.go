package bisect

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/campaign"
	"repro/internal/sim"
)

// Version identifies the bisect artifact schema; bump on incompatible
// change.
const Version = 1

// ClassVerdict is the per-episode-class answer of one cell: which
// minimal fix sets eliminate every confirmed episode of this class.
type ClassVerdict struct {
	// Class is the bug signature (checker.Classify).
	Class string `json:"class"`
	// BaselineEpisodes / BaselineIdleNs are the class's footprint under
	// the studied kernel (fx-none).
	BaselineEpisodes int   `json:"baseline_episodes"`
	BaselineIdleNs   int64 `json:"baseline_idle_ns"`
	// MinimalFixSets are the minimal lattice elements with zero episodes
	// of this class, in short-name form ("gc", "gi+oow").
	MinimalFixSets []string `json:"minimal_fix_sets,omitempty"`
	// Unresolved is set when no fix set at all zeroes the class.
	Unresolved bool `json:"unresolved,omitempty"`
}

// Interaction is one non-monotone lattice edge: adding a single fix to a
// set re-introduced idle-while-overloaded time beyond one monitoring
// window — the shape of the ROADMAP min-load anomaly.
type Interaction struct {
	// Base and Combined name the two lattice points; Added is the fix
	// whose addition hurt.
	Base     string `json:"base"`
	Added    string `json:"added"`
	Combined string `json:"combined"`
	// BaseIdleNs / CombinedIdleNs are the idle-while-overloaded times of
	// the two points.
	BaseIdleNs     int64 `json:"base_idle_ns"`
	CombinedIdleNs int64 `json:"combined_idle_ns"`
	// Classes are the episode classes present at the combined point.
	Classes map[string]int `json:"classes,omitempty"`
}

// Cell is the verdict for one (topology, workload, seed) coordinate.
type Cell struct {
	Topology string `json:"topology"`
	Workload string `json:"workload"`
	Seed     int64  `json:"seed"`

	// Baseline metrics under the studied kernel (fx-none).
	BaselineViolations int            `json:"baseline_violations"`
	BaselineIdleNs     int64          `json:"baseline_idle_while_overloaded_ns"`
	BaselineClasses    map[string]int `json:"baseline_classes,omitempty"`

	// MinimalFixSets are the minimal lattice elements that zero every
	// baseline episode class at once. Empty when the baseline is clean
	// (nothing to fix) or Unresolved is set.
	MinimalFixSets []string `json:"minimal_fix_sets,omitempty"`
	// Unresolved: the baseline has violations but no fix set zeroes all
	// its classes.
	Unresolved bool `json:"unresolved,omitempty"`
	// ResidualIdleNs records, for each minimal fix set, idle time from
	// episode classes outside the baseline's (startup transients, or
	// classes a fix introduced); zero entries are omitted.
	ResidualIdleNs map[string]int64 `json:"residual_idle_ns,omitempty"`

	// ClassVerdicts answer "which fix removes this episode class",
	// sorted by class name.
	ClassVerdicts []ClassVerdict `json:"class_verdicts,omitempty"`
	// Interactions lists non-monotone edges, sorted by (Base, Added).
	Interactions []Interaction `json:"interactions,omitempty"`

	// Performance verdict: the best-makespan lattice point and the
	// minimal sets within the tolerance of it. Empty when no lattice
	// point completed within the horizon.
	PerfBestSet        string   `json:"perf_best_set,omitempty"`
	PerfBestMakespanNs int64    `json:"perf_best_makespan_ns,omitempty"`
	PerfMinimalFixSets []string `json:"perf_minimal_fix_sets,omitempty"`

	// Wakeup-streak verdict — the episode-level overload-on-wakeup
	// witness. When the studied kernel shows wakeup-placement streaks
	// (K consecutive wakeups on busy cores with an allowed core idle;
	// see internal/latency), the minimal fix sets that zero them name
	// the pathology directly, even for cells like TPC-H whose episodes
	// are too short for checker confirmation and that previously got
	// only a makespan-basis attribution.
	BaselineStreaks       int      `json:"baseline_streaks,omitempty"`
	BaselineLongestStreak int      `json:"baseline_longest_streak,omitempty"`
	StreakMinimalFixSets  []string `json:"streak_minimal_fix_sets,omitempty"`
	// StreakUnresolved: the baseline has streaks but no fix set zeroes
	// them.
	StreakUnresolved bool `json:"streak_unresolved,omitempty"`

	// Latency verdict: the lattice point with the best p99
	// wakeup-to-run delay and the minimal sets within the latency
	// tolerance of it — the tail-latency analogue of the makespan
	// verdict. LatencyBestSet is empty when no lattice point completed
	// or the artifact carries no digests (pre-latency artifact).
	LatencyBestSet        string   `json:"latency_best_set,omitempty"`
	LatencyBestP99Ns      int64    `json:"latency_best_p99_ns,omitempty"`
	LatencyMinimalFixSets []string `json:"latency_minimal_fix_sets,omitempty"`

	// ExplainCheck cross-checks the baseline's per-episode counterfactual
	// attributions against the lattice verdicts above. Nil unless the
	// campaign ran with explain on and the baseline reported episodes.
	ExplainCheck *ExplainCheck `json:"explain_check,omitempty"`
}

// ExplainCheck compares causal (per-episode counterfactual replay)
// attribution with statistical (lattice walk) attribution for one cell.
// The two are independent computations — replays re-simulate forked
// worlds, the lattice walk compares whole-run episode counts — so their
// agreement is genuine cross-validation, not restatement.
type ExplainCheck struct {
	// Episodes / StreakEpisodes count the baseline's replayed episodes
	// (by kind); Attributed counts those where at least one single fix
	// erased the episode.
	Episodes       int `json:"episodes"`
	StreakEpisodes int `json:"streak_episodes,omitempty"`
	Attributed     int `json:"attributed"`
	// CheckerFixes / StreakFixes are the unions of per-episode erasing
	// fixes, by episode kind, in canonical lattice order.
	CheckerFixes []string `json:"checker_fixes,omitempty"`
	StreakFixes  []string `json:"streak_fixes,omitempty"`
	// AgreesWithMinimal reports whether the causal attributions cover the
	// lattice verdicts: some minimal fix set is contained in the checker
	// episodes' eraser union (when the cell has one), and likewise some
	// streak-minimal set in the streak episodes' (when the cell has one).
	AgreesWithMinimal bool `json:"agrees_with_minimal"`
}

// Key renders the cell coordinate, mirroring campaign scenario keys
// minus the config dimension.
func (c *Cell) Key() string {
	return fmt.Sprintf("%s/%s/s%d", c.Topology, c.Workload, c.Seed)
}

// Report is the aggregate bisect artifact.
type Report struct {
	Version    int   `json:"version"`
	BaseSeed   int64 `json:"base_seed"`
	ScaleMilli int64 `json:"scale_milli"`
	HorizonNs  int64 `json:"horizon_ns"`
	// CheckerSNs / CheckerMNs record the sanity-checker lens the sweep
	// used; verdicts are only comparable across equal lenses.
	CheckerSNs       int64   `json:"checker_s_ns"`
	CheckerMNs       int64   `json:"checker_m_ns"`
	PerfTolerancePct float64 `json:"perf_tolerance_pct"`
	// LatencyTolerancePct / LatencySlackNs tune the latency verdict;
	// StreakK echoes the wakeup-streak threshold the campaign ran under
	// (0 for pre-latency artifacts, whose streak/latency verdicts are
	// absent).
	LatencyTolerancePct float64 `json:"latency_tolerance_pct,omitempty"`
	LatencySlackNs      int64   `json:"latency_slack_ns,omitempty"`
	StreakK             int     `json:"streak_k,omitempty"`
	// Cells are sorted by (Topology, Workload, Seed).
	Cells []Cell `json:"cells"`
	// Campaign embeds the full per-scenario artifact the verdicts were
	// derived from, so campaign.Compare works on bisect baselines.
	Campaign *campaign.Campaign `json:"campaign"`
}

// Cell returns the cell with the given coordinates, or nil.
func (r *Report) Cell(topology, workload string, seed int64) *Cell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Topology == topology && c.Workload == workload && c.Seed == seed {
			return c
		}
	}
	return nil
}

// Analyze walks the lattice of an already-run campaign. The campaign
// must contain, for every (topology, workload, seed) cell, all 16
// lattice configurations (extra non-lattice configs are ignored). The
// checker lens is read from the artifact itself — never from the
// options — so re-analyzing a loaded or shard-merged artifact cannot
// mislabel the report or apply the wrong interaction threshold.
// Analysis is a pure function of the artifact plus PerfTolerancePct,
// and reproduces the report byte for byte.
func Analyze(c *campaign.Campaign, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if c.CheckerSNs == 0 || c.CheckerMNs == 0 {
		return nil, fmt.Errorf("bisect: campaign artifact records no checker lens")
	}
	type cellKey struct {
		topo, load string
		seed       int64
	}
	cells := map[cellKey]*[NumSets]*campaign.Result{}
	var order []cellKey
	for i := range c.Results {
		res := &c.Results[i]
		f, ok := ParseConfigName(res.Config)
		if !ok {
			continue
		}
		k := cellKey{res.Topology, res.Workload, res.Seed}
		lat := cells[k]
		if lat == nil {
			lat = new([NumSets]*campaign.Result)
			cells[k] = lat
			order = append(order, k)
		}
		if lat[f] != nil {
			return nil, fmt.Errorf("bisect: duplicate lattice result %s (merged shards overlap?)", res.Key)
		}
		lat[f] = res
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("bisect: campaign contains no lattice (fx-*) results")
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.topo != b.topo {
			return a.topo < b.topo
		}
		if a.load != b.load {
			return a.load < b.load
		}
		return a.seed < b.seed
	})

	r := &Report{
		Version:             Version,
		BaseSeed:            c.BaseSeed,
		ScaleMilli:          c.ScaleMilli,
		HorizonNs:           c.HorizonNs,
		CheckerSNs:          c.CheckerSNs,
		CheckerMNs:          c.CheckerMNs,
		PerfTolerancePct:    opts.PerfTolerancePct,
		LatencyTolerancePct: opts.LatencyTolerancePct,
		LatencySlackNs:      int64(opts.LatencySlack),
		StreakK:             c.StreakK,
		Campaign:            c,
	}
	for _, k := range order {
		lat := cells[k]
		for f := range lat {
			if lat[f] == nil {
				return nil, fmt.Errorf("bisect: cell %s/%s/s%d is missing lattice config %s",
					k.topo, k.load, k.seed, FixSet(f).ConfigName())
			}
		}
		cell := analyzeCell(k.topo, k.load, k.seed, lat, c.CheckerMNs, opts)
		r.Cells = append(r.Cells, cell)
	}
	return r, nil
}

// analyzeCell runs the memoized lattice walks for one cell. windowNs is
// the artifact's monitoring window, used as the interaction threshold.
func analyzeCell(topo, load string, seed int64, lat *[NumSets]*campaign.Result, windowNs int64, opts Options) Cell {
	base := lat[0]
	cell := Cell{
		Topology:           topo,
		Workload:           load,
		Seed:               seed,
		BaselineViolations: base.Violations,
		BaselineIdleNs:     base.IdleWhileOverloadedNs,
	}
	if len(base.EpisodeClasses) > 0 {
		cell.BaselineClasses = base.EpisodeClasses
	}

	// Episode verdict: clean(f) zeroes every baseline class.
	baseClasses := sortedKeys(base.EpisodeClasses)
	if len(baseClasses) > 0 {
		clean := func(f FixSet) bool {
			for _, cl := range baseClasses {
				if lat[f].EpisodeClasses[cl] > 0 {
					return false
				}
			}
			return true
		}
		minimal := minimalSets(clean)
		cell.Unresolved = len(minimal) == 0
		for _, f := range minimal {
			cell.MinimalFixSets = append(cell.MinimalFixSets, f.String())
			residual := int64(0)
			for cl, ns := range lat[f].IdleNsByClass {
				if base.EpisodeClasses[cl] == 0 {
					residual += ns
				}
			}
			if residual > 0 {
				if cell.ResidualIdleNs == nil {
					cell.ResidualIdleNs = map[string]int64{}
				}
				cell.ResidualIdleNs[f.String()] = residual
			}
		}

		// Per-class verdicts.
		for _, cl := range baseClasses {
			cv := ClassVerdict{
				Class:            cl,
				BaselineEpisodes: base.EpisodeClasses[cl],
				BaselineIdleNs:   base.IdleNsByClass[cl],
			}
			minimal := minimalSets(func(f FixSet) bool { return lat[f].EpisodeClasses[cl] == 0 })
			cv.Unresolved = len(minimal) == 0
			for _, f := range minimal {
				cv.MinimalFixSets = append(cv.MinimalFixSets, f.String())
			}
			cell.ClassVerdicts = append(cell.ClassVerdicts, cv)
		}
	}

	// Non-monotone edges: adding one fix re-introduces more than one
	// monitoring window of idle-while-overloaded time.
	threshold := windowNs
	for _, f := range All() {
		for _, bit := range Singles() {
			if f.Has(bit) {
				continue
			}
			g := f | bit
			if lat[g].IdleWhileOverloadedNs > lat[f].IdleWhileOverloadedNs+threshold {
				cell.Interactions = append(cell.Interactions, Interaction{
					Base:           f.String(),
					Added:          bit.String(),
					Combined:       g.String(),
					BaseIdleNs:     lat[f].IdleWhileOverloadedNs,
					CombinedIdleNs: lat[g].IdleWhileOverloadedNs,
					Classes:        lat[g].EpisodeClasses,
				})
			}
		}
	}
	sort.Slice(cell.Interactions, func(i, j int) bool {
		a, b := cell.Interactions[i], cell.Interactions[j]
		if a.Base != b.Base {
			return a.Base < b.Base
		}
		return a.Added < b.Added
	})

	// Performance verdict over completed runs.
	best := FixSet(0)
	bestNs := int64(-1)
	for _, f := range All() {
		if !lat[f].Completed {
			continue
		}
		if bestNs < 0 || lat[f].MakespanNs < bestNs {
			best, bestNs = f, lat[f].MakespanNs
		}
	}
	if bestNs >= 0 {
		cell.PerfBestSet = best.String()
		cell.PerfBestMakespanNs = bestNs
		limit := float64(bestNs) * (1 + opts.PerfTolerancePct/100)
		qualifies := func(f FixSet) bool {
			return lat[f].Completed && float64(lat[f].MakespanNs) <= limit
		}
		for _, f := range minimalSets(qualifies) {
			cell.PerfMinimalFixSets = append(cell.PerfMinimalFixSets, f.String())
		}
	}

	// Wakeup-streak verdict: which minimal fix sets silence the
	// episode-level overload-on-wakeup witness present under the
	// studied kernel.
	streaksOf := func(f FixSet) int {
		if st := lat[f].WakeStreaks; st != nil {
			return st.Streaks
		}
		return 0
	}
	if base.WakeStreaks != nil && base.WakeStreaks.Streaks > 0 {
		cell.BaselineStreaks = base.WakeStreaks.Streaks
		cell.BaselineLongestStreak = base.WakeStreaks.Longest
		minimal := minimalSets(func(f FixSet) bool { return streaksOf(f) == 0 })
		cell.StreakUnresolved = len(minimal) == 0
		for _, f := range minimal {
			cell.StreakMinimalFixSets = append(cell.StreakMinimalFixSets, f.String())
		}
	}

	// Latency verdict over completed runs carrying digests: the
	// tail-latency analogue of the makespan verdict. A completed run
	// without a wake digest recorded no wakeup-to-run delays, which is
	// a genuine zero tail; the axis is skipped entirely only when no
	// completed run has a digest (a pre-latency artifact).
	p99Of := func(f FixSet) int64 {
		if d := lat[f].WakeLatency; d != nil {
			return d.P99Ns
		}
		return 0
	}
	anyDigest := false
	bestLat := FixSet(0)
	bestLatNs := int64(-1)
	for _, f := range All() {
		if !lat[f].Completed {
			continue
		}
		if lat[f].WakeLatency != nil {
			anyDigest = true
		}
		if p99 := p99Of(f); bestLatNs < 0 || p99 < bestLatNs {
			bestLat, bestLatNs = f, p99
		}
	}
	if anyDigest && bestLatNs >= 0 {
		cell.LatencyBestSet = bestLat.String()
		cell.LatencyBestP99Ns = bestLatNs
		limit := float64(bestLatNs)*(1+opts.LatencyTolerancePct/100) + float64(opts.LatencySlack)
		qualifies := func(f FixSet) bool {
			return lat[f].Completed && float64(p99Of(f)) <= limit
		}
		for _, f := range minimalSets(qualifies) {
			cell.LatencyMinimalFixSets = append(cell.LatencyMinimalFixSets, f.String())
		}
	}

	cell.ExplainCheck = explainCheck(&cell, base)
	return cell
}

// explainCheck builds the causal-vs-statistical cross-check for one cell
// from the baseline's explain report (nil when the campaign ran without
// explain, or the baseline replayed no episodes).
func explainCheck(cell *Cell, base *campaign.Result) *ExplainCheck {
	ex := base.Explain
	if ex == nil || len(ex.Episodes) == 0 {
		return nil
	}
	ec := &ExplainCheck{Episodes: len(ex.Episodes)}
	checkerFixes := map[string]bool{}
	streakFixes := map[string]bool{}
	for _, ep := range ex.Episodes {
		union := checkerFixes
		if ep.Kind == "streak" {
			ec.StreakEpisodes++
			union = streakFixes
		}
		if len(ep.Attribution) > 0 {
			ec.Attributed++
		}
		for _, f := range ep.Attribution {
			union[f] = true
		}
	}
	// Render the unions in canonical lattice order, so the artifact stays
	// byte-stable.
	for _, bit := range Singles() {
		if checkerFixes[bit.String()] {
			ec.CheckerFixes = append(ec.CheckerFixes, bit.String())
		}
		if streakFixes[bit.String()] {
			ec.StreakFixes = append(ec.StreakFixes, bit.String())
		}
	}
	ec.AgreesWithMinimal = minimalCovered(cell.MinimalFixSets, checkerFixes) &&
		minimalCovered(cell.StreakMinimalFixSets, streakFixes)
	return ec
}

// minimalCovered reports whether some minimal fix set is fully contained
// in the eraser union (vacuously true when the cell has no minimal sets
// on this axis — nothing to cross-check).
func minimalCovered(minimal []string, erasers map[string]bool) bool {
	if len(minimal) == 0 {
		return true
	}
	for _, set := range minimal {
		covered := true
		for _, fix := range strings.Split(set, "+") {
			if !erasers[fix] {
				covered = false
				break
			}
		}
		if covered {
			return true
		}
	}
	return false
}

// minimalSets walks the lattice bottom-up (by popcount) and returns the
// minimal elements of the family {f : ok(f)}: every ok set none of whose
// proper subsets is ok. ok is evaluated exactly once per lattice point
// (the memoized cells); subset reachability propagates through the Hasse
// diagram (f covers f&^bit) instead of re-enumerating subsets.
func minimalSets(ok func(FixSet) bool) []FixSet {
	var okMemo, subsetOK [NumSets]bool
	for mask := 0; mask < NumSets; mask++ {
		f := FixSet(mask)
		okMemo[mask] = ok(f)
		for _, bit := range Singles() {
			if f.Has(bit) {
				child := mask &^ int(bit)
				if okMemo[child] || subsetOK[child] {
					subsetOK[mask] = true
					break
				}
			}
		}
	}
	var out []FixSet
	for mask := 0; mask < NumSets; mask++ {
		if okMemo[mask] && !subsetOK[mask] {
			out = append(out, FixSet(mask))
		}
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// --- seed stability ------------------------------------------------------

// Stability reports whether a (topology, workload) cell's verdict is
// identical across every seed of the sweep.
type Stability struct {
	Topology string
	Workload string
	Seeds    []int64
	Stable   bool
	// Signatures maps each distinct verdict signature to the seeds that
	// produced it (one entry when Stable).
	Signatures map[string][]int64
}

// verdictSignature is the canonical comparison string of a cell's
// verdict: minimal sets, per-class minimal sets, perf minimal sets and
// interaction edges — everything except raw metric values, which
// legitimately jitter across seeds.
func (c *Cell) verdictSignature() string {
	var b strings.Builder
	fmt.Fprintf(&b, "minimal=%v unresolved=%v perf=%v streak=%v latency=%v",
		c.MinimalFixSets, c.Unresolved, c.PerfMinimalFixSets,
		c.StreakMinimalFixSets, c.LatencyMinimalFixSets)
	for _, cv := range c.ClassVerdicts {
		fmt.Fprintf(&b, " %s=%v", cv.Class, cv.MinimalFixSets)
	}
	var edges []string
	for _, in := range c.Interactions {
		edges = append(edges, in.Base+"+"+in.Added)
	}
	sort.Strings(edges)
	fmt.Fprintf(&b, " interactions=%v", edges)
	return b.String()
}

// SeedStability groups cells by (topology, workload) and compares their
// verdict signatures across seeds, in cell order.
func (r *Report) SeedStability() []Stability {
	type key struct{ topo, load string }
	byCell := map[key]*Stability{}
	var order []key
	for i := range r.Cells {
		c := &r.Cells[i]
		k := key{c.Topology, c.Workload}
		st := byCell[k]
		if st == nil {
			st = &Stability{Topology: c.Topology, Workload: c.Workload,
				Signatures: map[string][]int64{}}
			byCell[k] = st
			order = append(order, k)
		}
		st.Seeds = append(st.Seeds, c.Seed)
		sig := c.verdictSignature()
		st.Signatures[sig] = append(st.Signatures[sig], c.Seed)
	}
	var out []Stability
	for _, k := range order {
		st := byCell[k]
		st.Stable = len(st.Signatures) == 1
		out = append(out, *st)
	}
	return out
}

// --- artifact IO ---------------------------------------------------------

// EncodeJSON renders the report as stable, indented JSON with a trailing
// newline. Identical reports encode to identical bytes.
func (r *Report) EncodeJSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteFile writes the JSON artifact to path.
func (r *Report) WriteFile(path string) error {
	data, err := r.EncodeJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a bisect artifact written by WriteFile.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bisect: parsing %s: %w", path, err)
	}
	if r.Version != Version {
		return nil, fmt.Errorf("bisect: %s has artifact version %d, want %d", path, r.Version, Version)
	}
	if r.Campaign == nil {
		return nil, fmt.Errorf("bisect: %s has no embedded campaign artifact", path)
	}
	if r.Campaign.Version != campaign.Version {
		return nil, fmt.Errorf("bisect: %s embeds campaign artifact version %d, want %d",
			path, r.Campaign.Version, campaign.Version)
	}
	return &r, nil
}

// FormatSummary renders the report as a human-readable verdict list.
func (r *Report) FormatSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bisect: %d cells x %d lattice points (base seed %d, scale %.3g, checker S=%v M=%v)\n",
		len(r.Cells), NumSets, r.BaseSeed, float64(r.ScaleMilli)/1000,
		sim.Time(r.CheckerSNs), sim.Time(r.CheckerMNs))
	for i := range r.Cells {
		c := &r.Cells[i]
		fmt.Fprintf(&b, "\n%s:\n", c.Key())
		if c.BaselineViolations == 0 {
			fmt.Fprintf(&b, "  baseline clean: no confirmed idle-while-overloaded episodes\n")
		} else {
			fmt.Fprintf(&b, "  baseline: %d episodes, %v idle-while-overloaded (%s)\n",
				c.BaselineViolations, sim.Time(c.BaselineIdleNs), formatClasses(c.BaselineClasses))
			if c.Unresolved {
				fmt.Fprintf(&b, "  minimal fix sets: UNRESOLVED (no lattice point zeroes every baseline class)\n")
			} else {
				fmt.Fprintf(&b, "  minimal fix sets: %s\n", formatNamedSets(c.MinimalFixSets))
			}
			for _, cv := range c.ClassVerdicts {
				verdict := formatNamedSets(cv.MinimalFixSets)
				if cv.Unresolved {
					verdict = "UNRESOLVED"
				}
				fmt.Fprintf(&b, "    %-20s %3d episodes, %12v -> %s\n",
					cv.Class, cv.BaselineEpisodes, sim.Time(cv.BaselineIdleNs), verdict)
			}
		}
		for _, in := range c.Interactions {
			fmt.Fprintf(&b, "  non-monotone: {%s} +%s -> {%s}: %v -> %v idle-while-overloaded (%s)\n",
				in.Base, in.Added, in.Combined,
				sim.Time(in.BaseIdleNs), sim.Time(in.CombinedIdleNs), formatClasses(in.Classes))
		}
		if c.BaselineStreaks > 0 {
			verdict := formatNamedSets(c.StreakMinimalFixSets)
			if c.StreakUnresolved {
				verdict = "UNRESOLVED"
			}
			fmt.Fprintf(&b, "  wake streaks (>=%d busy-while-idle): baseline %d (longest %d) -> zeroed by %s\n",
				r.StreakK, c.BaselineStreaks, c.BaselineLongestStreak, verdict)
		}
		if c.LatencyBestSet != "" {
			fmt.Fprintf(&b, "  latency: best {%s} p99-wake %v; minimal within %.3g%%+%v: %s\n",
				c.LatencyBestSet, sim.Time(c.LatencyBestP99Ns), r.LatencyTolerancePct,
				sim.Time(r.LatencySlackNs), formatNamedSets(c.LatencyMinimalFixSets))
		}
		if c.PerfBestSet != "" {
			fmt.Fprintf(&b, "  perf: best {%s} at %v; minimal within %.3g%%: %s\n",
				c.PerfBestSet, sim.Time(c.PerfBestMakespanNs), r.PerfTolerancePct,
				formatNamedSets(c.PerfMinimalFixSets))
		}
		if ec := c.ExplainCheck; ec != nil {
			agree := "AGREES with the lattice verdict"
			if !ec.AgreesWithMinimal {
				agree = "does NOT cover the lattice verdict"
			}
			fmt.Fprintf(&b, "  explain: %d episodes replayed (%d streak), %d causally attributed; erasers checker=%v streak=%v — %s\n",
				ec.Episodes, ec.StreakEpisodes, ec.Attributed, ec.CheckerFixes, ec.StreakFixes, agree)
		}
	}
	return b.String()
}

func formatNamedSets(names []string) string {
	if len(names) == 0 {
		return "(none)"
	}
	var parts []string
	for _, n := range names {
		parts = append(parts, "{"+n+"}")
	}
	return strings.Join(parts, " | ")
}

func formatClasses(m map[string]int) string {
	if len(m) == 0 {
		return "no classes"
	}
	var parts []string
	for _, k := range sortedKeys(m) {
		parts = append(parts, fmt.Sprintf("%s:%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}
