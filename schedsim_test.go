package schedsim_test

import (
	"testing"

	schedsim "repro"
)

// These tests exercise the library the way a downstream user would: only
// through the public aliases.

func TestQuickstartFlow(t *testing.T) {
	m := schedsim.NewMachine(schedsim.SMP(4), schedsim.DefaultConfig(), 1)
	p := m.NewProc("app", schedsim.ProcOpts{})
	prog := schedsim.NewProgram().
		Compute(5 * schedsim.Millisecond).
		Sleep(schedsim.Millisecond).
		Compute(5 * schedsim.Millisecond).
		Build()
	for i := 0; i < 4; i++ {
		p.Spawn(prog, schedsim.SpawnOpts{})
	}
	end, ok := m.RunUntilDone(schedsim.Second, p)
	if !ok {
		t.Fatal("did not finish")
	}
	if end > 50*schedsim.Millisecond {
		t.Fatalf("took %v", end)
	}
}

func TestPublicBugToggle(t *testing.T) {
	run := func(f schedsim.Features) uint64 {
		cfg := schedsim.DefaultConfig()
		cfg.Features = f
		m := schedsim.NewMachine(schedsim.TwoNode(2), cfg, 3)
		db := schedsim.NewTPCH(m, schedsim.TPCHOpts{Containers: []int{4}, Autogroups: true, Seed: 1})
		m.Run(20 * schedsim.Millisecond)
		db.RunQuery(0, 0, schedsim.Second)
		return m.Sched.Counters().Wakeups
	}
	if run(schedsim.Features{}) == 0 || run(schedsim.AllFixes()) == 0 {
		t.Fatal("no wakeups observed through public API")
	}
}

func TestPublicChecker(t *testing.T) {
	m := schedsim.NewMachine(schedsim.SMP(2), schedsim.DefaultConfig(), 1)
	c := schedsim.NewChecker(m.Sched, nil, schedsim.CheckerConfig{S: 10 * schedsim.Millisecond})
	c.Start()
	p := m.NewProc("p", schedsim.ProcOpts{})
	p.Spawn(schedsim.NewProgram().Compute(100*schedsim.Millisecond).Build(), schedsim.SpawnOpts{})
	m.Run(100 * schedsim.Millisecond)
	if c.Checks() == 0 {
		t.Fatal("checker idle")
	}
	if len(c.Violations()) != 0 {
		t.Fatal("false positive on a healthy machine")
	}
}

func TestPublicTraceAndHeatmap(t *testing.T) {
	m := schedsim.NewMachine(schedsim.SMP(2), schedsim.DefaultConfig(), 1)
	rec := schedsim.NewRecorder(1 << 12)
	m.SetRecorder(rec)
	rec.Start()
	m.Sched.EmitSnapshot()
	p := m.NewProc("p", schedsim.ProcOpts{})
	p.Spawn(schedsim.NewProgram().Compute(20*schedsim.Millisecond).Build(), schedsim.SpawnOpts{})
	m.Run(20 * schedsim.Millisecond)
	rec.Stop()
	h := schedsim.RQSizeHeatmap(rec.Events(), 2, 10, 0, 20*schedsim.Millisecond)
	if h.Max() < 1 {
		t.Fatalf("heatmap max = %v, want >= 1", h.Max())
	}
}

func TestPublicTopologyAccessors(t *testing.T) {
	topo := schedsim.Bulldozer8()
	if topo.NumCores() != 64 || topo.NumNodes() != 8 {
		t.Fatal("Bulldozer8 shape wrong")
	}
	set := schedsim.NodeSet(topo, 1, 2)
	if set.Count() != 16 {
		t.Fatal("NodeSet wrong")
	}
	if len(schedsim.NASSuite()) != 9 {
		t.Fatal("NASSuite wrong")
	}
}
