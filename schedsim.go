// Package schedsim is the public API of this reproduction of "The Linux
// Scheduler: a Decade of Wasted Cores" (Lozi et al., EuroSys 2016).
//
// It exposes, as a single import, everything a user needs to
//
//   - build a simulated multicore NUMA machine running the paper's CFS
//     model (NewMachine, Bulldozer8, DefaultConfig),
//   - toggle each of the paper's four scheduler bugs and fixes (Features),
//   - run the paper's workloads (NASSuite, LaunchMake, NewTPCH,
//     StartNoise) or build custom ones (NewProgram, process/thread
//     spawning, spinlocks, barriers, work queues),
//   - detect invariant violations with the online sanity checker
//     (NewChecker, §4.1),
//   - record and visualize scheduling activity (NewRecorder,
//     RQSizeHeatmap, §4.2),
//   - regenerate every table and figure of the paper's evaluation
//     (Table1..Table5, Fig1..Fig5 in the experiments aliases),
//   - and sweep whole scenario campaigns — topology x workload x config
//     x seed cross-products — on a parallel worker pool with
//     byte-reproducible JSON artifacts and baseline regression
//     comparison (RunCampaign, DefaultCampaignMatrix).
//
// A minimal session:
//
//	m := schedsim.NewMachine(schedsim.Bulldozer8(), schedsim.DefaultConfig(), 1)
//	p := m.NewProc("app", schedsim.ProcOpts{})
//	p.Spawn(schedsim.NewProgram().Compute(10*schedsim.Millisecond).Build(),
//	        schedsim.SpawnOpts{})
//	m.RunUntilDone(schedsim.Second, p)
//
// Determinism: identical seeds produce identical runs, event for event.
package schedsim

import (
	"repro/internal/campaign"
	"repro/internal/checker"
	"repro/internal/machine"
	"repro/internal/modsched"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/tourney"
	"repro/internal/trace"
	"repro/internal/viz"
	"repro/internal/workload"
)

// Virtual time (nanosecond resolution).
type (
	// Time is a point or duration in virtual time.
	Time = sim.Time
	// Engine is the deterministic discrete-event engine.
	Engine = sim.Engine
)

// Duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Machine topology.
type (
	// Topology describes cores, SMT siblings, NUMA nodes and hop
	// distances.
	Topology = topology.Topology
	// CoreID identifies a logical CPU.
	CoreID = topology.CoreID
	// NodeID identifies a NUMA node.
	NodeID = topology.NodeID
)

// Topology constructors.
var (
	// Bulldozer8 is the paper's 64-core, 8-node machine (Table 5, Fig 4).
	Bulldozer8 = topology.Bulldozer8
	// Machine32 is the 32-core, 4-node machine of Figure 1.
	Machine32 = topology.Machine32
	// SMP builds a single-node machine with n cores.
	SMP = topology.SMP
	// TwoNode builds a two-node machine.
	TwoNode = topology.TwoNode
	// Ring builds an n-node ring machine.
	Ring = topology.Ring
	// Grid builds a rows x cols NUMA mesh.
	Grid = topology.Grid
)

// Scheduler configuration and state.
type (
	// Config carries the CFS tunables and feature flags.
	Config = sched.Config
	// Features selects the four bug fixes independently.
	Features = sched.Features
	// Scheduler is the CFS model (usually accessed via Machine.Sched).
	Scheduler = sched.Scheduler
	// Thread is a schedulable entity.
	Thread = sched.Thread
	// CPUSet is an affinity mask (tasksets, §3.2).
	CPUSet = sched.CPUSet
	// Counters aggregates scheduler activity.
	Counters = sched.Counters
)

// Scheduler constructors and helpers.
var (
	// DefaultConfig returns kernel-default tunables with all four bugs
	// present — the kernel the paper studied.
	DefaultConfig = sched.DefaultConfig
	// AllFixes returns a Features value with every fix enabled.
	AllFixes = sched.AllFixes
	// NewCPUSet builds an affinity mask from core ids.
	NewCPUSet = sched.NewCPUSet
	// FullCPUSet builds a mask of cores [0, n).
	FullCPUSet = sched.FullCPUSet
)

// Machine and workload programs.
type (
	// Machine is a complete simulated system.
	Machine = machine.Machine
	// Proc is a process (threads sharing an autogroup).
	Proc = machine.Proc
	// MThread pairs a scheduler thread with its program.
	MThread = machine.MThread
	// ProcOpts configures process creation.
	ProcOpts = machine.ProcOpts
	// SpawnOpts configures thread creation.
	SpawnOpts = machine.SpawnOpts
	// Program is an executable instruction list.
	Program = machine.Program
	// Builder assembles Programs.
	Builder = machine.Builder
	// SpinLock burns CPU while contended (§3.2).
	SpinLock = machine.SpinLock
	// SpinBarrier is a (possibly adaptive) spin barrier.
	SpinBarrier = machine.SpinBarrier
	// SpinFlag is a directional busy-wait handoff (lu's pipeline).
	SpinFlag = machine.SpinFlag
	// WaitQueue is a futex-style blocking queue.
	WaitQueue = machine.WaitQueue
	// WorkQueue is a worker-pool task queue (§3.3's database).
	WorkQueue = machine.WorkQueue
	// Task is one WorkQueue work item.
	Task = machine.Task
)

// Machine constructors.
var (
	// NewMachine builds a machine over a topology with a seed.
	NewMachine = machine.New
	// NewProgram starts a program builder.
	NewProgram = machine.NewProgram
)

// Workloads.
type (
	// NASApp parametrizes one synthetic NAS program.
	NASApp = workload.NASApp
	// NASLaunchOpts configures a NAS run.
	NASLaunchOpts = workload.NASLaunchOpts
	// MakeOpts configures the kernel-make-like job (§3.1).
	MakeOpts = workload.MakeOpts
	// TPCH is the running database instance (§3.3).
	TPCH = workload.TPCH
	// TPCHOpts configures the database.
	TPCHOpts = workload.TPCHOpts
	// Noise emits transient kernel threads (§3.3).
	Noise = workload.Noise
	// NoiseOpts configures the noise generator.
	NoiseOpts = workload.NoiseOpts
)

// Workload constructors.
var (
	// NASSuite returns the nine NPB-like applications.
	NASSuite = workload.NASSuite
	// NASAppByName finds a suite entry.
	NASAppByName = workload.NASAppByName
	// LaunchMake starts the make-like job.
	LaunchMake = workload.LaunchMake
	// LaunchR starts a single-threaded CPU hog in its own autogroup.
	LaunchR = workload.LaunchR
	// NewTPCH builds the worker-pool database.
	NewTPCH = workload.NewTPCH
	// StartNoise begins transient kernel-thread bursts.
	StartNoise = workload.StartNoise
	// NodeSet builds the taskset covering whole NUMA nodes.
	NodeSet = workload.NodeSet
	// DefaultTPCHOpts returns the paper's database configuration.
	DefaultTPCHOpts = workload.DefaultTPCHOpts
	// DefaultNoiseOpts returns §3.3-scale background noise.
	DefaultNoiseOpts = workload.DefaultNoiseOpts
	// DefaultMakeOpts returns the Figure 2 make parameters.
	DefaultMakeOpts = workload.DefaultMakeOpts
)

// Tools: the sanity checker (§4.1) and the visualizer (§4.2).
type (
	// Checker verifies the work-conserving invariant online.
	Checker = checker.Checker
	// CheckerConfig tunes S, M and the profiling window.
	CheckerConfig = checker.Config
	// Violation is a confirmed invariant violation.
	Violation = checker.Violation
	// Recorder captures scheduler events.
	Recorder = trace.Recorder
	// Event is one trace event.
	Event = trace.Event
	// Heatmap is a cores x time intensity chart.
	Heatmap = viz.Heatmap
)

// Tool constructors.
var (
	// NewChecker attaches a sanity checker to a scheduler.
	NewChecker = checker.New
	// NewRecorder allocates a fixed-capacity trace buffer.
	NewRecorder = trace.NewRecorder
	// ReadTrace parses a binary trace file.
	ReadTrace = trace.Read
	// RQSizeHeatmap builds the Figure 2a/3 chart from events.
	RQSizeHeatmap = viz.RQSizeHeatmap
	// LoadHeatmap builds the Figure 2b chart from events.
	LoadHeatmap = viz.LoadHeatmap
	// ConsideredChart renders the Figure 5 chart.
	ConsideredChart = viz.ConsideredChart
	// SummarizeBalance aggregates balance decisions (§4.1 profiling).
	SummarizeBalance = viz.SummarizeBalance
	// DiagnoseGroupImbalance looks for the §3.1 signature in a trace.
	DiagnoseGroupImbalance = viz.DiagnoseGroupImbalance
	// TraceEpisodes extracts idle-while-overloaded episodes from a trace.
	TraceEpisodes = viz.Episodes
	// AnalyzeEpisodes summarizes episode durations (Figure 3's recovery
	// analysis).
	AnalyzeEpisodes = viz.AnalyzeEpisodes
)

// The §5 modular scheduler prototype: a core module that owns the
// work-conserving invariant plus optimization modules that suggest
// placements.
type (
	// CoreModule arbitrates module suggestions and enforces the
	// invariant.
	CoreModule = modsched.CoreModule
	// SchedulerModule is one optimization module.
	SchedulerModule = modsched.Module
	// ModularConfig tunes the core module.
	ModularConfig = modsched.Config
	// CacheAffinityModule suggests waking threads near their data.
	CacheAffinityModule = modsched.CacheAffinity
	// LoadSpreadModule suggests the least-loaded core.
	LoadSpreadModule = modsched.LoadSpread
	// NUMALocalityModule prefers the thread's last NUMA node.
	NUMALocalityModule = modsched.NUMALocality
)

// AttachModular installs the §5 core module on a scheduler.
var AttachModular = modsched.Attach

// The campaign subsystem: declarative scenario matrices executed on a
// sharded worker pool with byte-reproducible aggregate artifacts and
// baseline regression comparison.
type (
	// CampaignMatrix declares a topology x workload x config x seed
	// cross-product.
	CampaignMatrix = campaign.Matrix
	// CampaignScenario is one resolved cell of a matrix.
	CampaignScenario = campaign.Scenario
	// CampaignWorkload is a named scenario workload.
	CampaignWorkload = campaign.Workload
	// CampaignTopologySpec is a named topology constructor.
	CampaignTopologySpec = campaign.TopologySpec
	// CampaignConfigSpec is a named scheduler configuration.
	CampaignConfigSpec = campaign.ConfigSpec
	// CampaignRunnerOpts tunes campaign execution (workers, base seed,
	// checker cadence, trace capture).
	CampaignRunnerOpts = campaign.RunnerOpts
	// Campaign is the aggregate artifact of one matrix run.
	Campaign = campaign.Campaign
	// CampaignResult is one scenario's collected metrics.
	CampaignResult = campaign.Result
	// CampaignComparison is the diff of a campaign against a baseline.
	CampaignComparison = campaign.Comparison
)

// Campaign runner and helpers.
var (
	// RunCampaign executes a whole matrix on a worker pool.
	RunCampaign = campaign.Run
	// DefaultCampaignMatrix is the standard 30-scenario sweep.
	DefaultCampaignMatrix = campaign.DefaultMatrix
	// LoadCampaign reads a JSON artifact written by Campaign.WriteFile.
	LoadCampaign = campaign.Load
	// CompareCampaigns diffs two artifacts for per-scenario regressions.
	CompareCampaigns = campaign.Compare
)

// Policy registry and tournaments: the pluggable scheduler-policy API
// (internal/policy) and the campaign tournaments over it
// (internal/tourney).
type (
	// Policy is one named, versioned point in the scheduler design
	// space: a sched.Config plus optional modsched modules and an
	// attach hook for placement overrides or queueing disciplines.
	Policy = policy.Policy
	// TourneyOptions declares a tournament: cell dimensions, policy
	// lineup, verdict tolerances.
	TourneyOptions = tourney.Options
	// TourneyReport is the tournament artifact: per-cell scores and
	// verdicts plus non-monotone policy flips.
	TourneyReport = tourney.Report
)

// Policy registration and tournament entry points.
var (
	// RegisterPolicy adds a policy to the registry (error on duplicate
	// name); registered policies are campaign config coordinates.
	RegisterPolicy = policy.Register
	// PolicyByName looks a registered policy up.
	PolicyByName = policy.ByName
	// RunTourney executes a tournament and analyzes it.
	RunTourney = tourney.Run
	// LoadTourney reads a JSON artifact written by TourneyReport.WriteFile.
	LoadTourney = tourney.Load
)
