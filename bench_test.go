// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus microbenchmarks of the scheduler substrate.
//
// Each experiment benchmark runs the corresponding workload end to end at
// a reduced scale and reports the paper's headline quantity as a custom
// metric (speedup factors for Tables 1/3, percent improvements for
// Table 2, coverage counts for Figure 5) alongside the usual ns/op —
// regenerate the full-scale tables with `go run ./cmd/wastedcores`.
package schedsim_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	schedsim "repro"
	"repro/internal/bisect"
	"repro/internal/checker"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
)

func benchOpts() experiments.Options {
	return experiments.Options{Seed: 42, Scale: 0.3}
}

// BenchmarkTable1 regenerates Table 1 (Scheduling Group Construction bug:
// NAS pinned to two 2-hop-apart nodes), reporting each app's speedup.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(benchOpts())
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.Speedup, r.App+"_speedup_x")
			}
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (TPC-H under fix combinations),
// reporting Q18 and full-benchmark improvements.
func BenchmarkTable2(b *testing.B) {
	opts := benchOpts()
	opts.Scale = 1
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(opts)
		if i == b.N-1 {
			for _, r := range rows {
				if r.Config == "None" {
					continue
				}
				name := strings.ReplaceAll(r.Config, " ", "-")
				b.ReportMetric(-r.Q18Pct, name+"_q18_improvement_pct")
				b.ReportMetric(-r.FullPct, name+"_full_improvement_pct")
			}
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (Missing Scheduling Domains bug:
// NAS with 64 threads after a hotplug cycle).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3(benchOpts())
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.Speedup, r.App+"_speedup_x")
			}
		}
	}
}

// BenchmarkGroupImbalanceLU regenerates the §3.1 lu + 4xR result (paper:
// 13x with the Group Imbalance fix) that feeds Table 4's maximum.
func BenchmarkGroupImbalanceLU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.GroupImbalanceLU(benchOpts())
		if i == b.N-1 {
			b.ReportMetric(res.Speedup, "lu_speedup_x")
		}
	}
}

// BenchmarkFig2 regenerates Figure 2 (Group Imbalance heatmaps and the
// make improvement; paper: make completes 13% faster with the fix).
func BenchmarkFig2(b *testing.B) {
	opts := benchOpts()
	opts.Scale = 0.5
	for i := 0; i < b.N; i++ {
		res := experiments.Fig2(opts)
		if i == b.N-1 {
			imp := 100 * (1 - res.MakeFix.Seconds()/res.MakeBug.Seconds())
			b.ReportMetric(imp, "make_improvement_pct")
			b.ReportMetric(float64(res.IdleNodesObserved), "underloaded_nodes")
		}
	}
}

// BenchmarkFig3 regenerates Figure 3 (Overload-on-Wakeup trace), reporting
// how many wakeups landed on busy cores.
func BenchmarkFig3(b *testing.B) {
	opts := benchOpts()
	opts.Scale = 1
	for i := 0; i < b.N; i++ {
		res := experiments.Fig3(opts)
		if i == b.N-1 {
			b.ReportMetric(float64(res.WakeupsOnBusy), "wakeups_on_busy")
			b.ReportMetric(res.WastedCoreTime.Seconds()*1000, "wasted_core_ms")
		}
	}
}

// BenchmarkFig5 regenerates Figure 5 (cores considered by core 0 after the
// hotplug cycle): 8 with the bug, the cross-node spans with the fix.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig5(benchOpts())
		if i == b.N-1 {
			b.ReportMetric(float64(res.CoverageBug), "coverage_bug_cores")
			b.ReportMetric(float64(res.CoverageFix), "coverage_fix_cores")
		}
	}
}

// BenchmarkCampaign measures the scenario-campaign runner's parallel
// speedup: the smoke matrix executed with one worker versus one worker
// per CPU. The artifacts are byte-identical either way (asserted in
// internal/campaign's tests); this benchmark tracks the wall-clock win,
// reporting scenarios/sec and simulation events/sec so BENCH_*.json
// records both parallel and raw-engine throughput.
func BenchmarkCampaign(b *testing.B) {
	m := schedsim.DefaultCampaignMatrix()
	m.Scale = 0.1
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var scenarios int
			var events uint64
			for i := 0; i < b.N; i++ {
				c, err := schedsim.RunCampaign(m, schedsim.CampaignRunnerOpts{
					Workers:  workers,
					BaseSeed: 42,
				})
				if err != nil {
					b.Fatal(err)
				}
				scenarios = len(c.Results)
				events = 0
				for _, r := range c.Results {
					events += r.Events
				}
			}
			b.ReportMetric(float64(scenarios*b.N)/b.Elapsed().Seconds(), "scenarios/s")
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
			// events/op lets benchjson derive allocs-per-event, the gate
			// that keeps the obs-disabled hot path allocation-free.
			b.ReportMetric(float64(events), "events/op")
		})
	}

	// The provenance-off run pins the zero-cost-when-off contract of the
	// decision-provenance hooks (internal/obs.ProvRing): the dense bisect
	// checker lens drives every hook site hot — balance verdicts, steal
	// rejections, wakeup placements, migrations, episode candidates —
	// with no ring attached, and benchjson's -max-allocs-per-event gate
	// asserts the run still stays at or under one allocation per event,
	// so every hook compiles down to a nil-check.
	b.Run("provenance=off", func(b *testing.B) {
		var events uint64
		for i := 0; i < b.N; i++ {
			c, err := schedsim.RunCampaign(m, schedsim.CampaignRunnerOpts{
				Workers:  1,
				BaseSeed: 42,
				Checker:  checker.Config{S: 20 * sim.Millisecond, M: 15 * sim.Millisecond},
			})
			if err != nil {
				b.Fatal(err)
			}
			events = 0
			for _, r := range c.Results {
				events += r.Events
			}
		}
		b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		b.ReportMetric(float64(events), "events/op")
	})
}

// BenchmarkCampaignBisectFork measures the checkpoint/fork win on the
// bisect lattice: the smoke sweep run through the forked runner (shared
// per-cell prefix simulated once, one fork per lattice point, prove
// collapse for equivalent configs) versus the sequential runner that
// simulates every scenario from t=0. Both paths produce byte-identical
// artifacts (asserted in internal/bisect's tests and by `make
// bisect-smoke`); this benchmark records the wall-clock ratio. It
// deliberately reports no events/op — the fork path trades allocations
// for wall time, so the allocation-free gate applies only to the
// sequential engine benchmarks.
func BenchmarkCampaignBisectFork(b *testing.B) {
	var forkSec, seqSec float64
	var scenarios int
	for i := 0; i < b.N; i++ {
		for _, noFork := range []bool{false, true} {
			o := bisect.SmokeOptions()
			o.BaseSeed = 42
			o.NoFork = noFork
			start := time.Now()
			r, err := bisect.Run(o)
			elapsed := time.Since(start).Seconds()
			if err != nil {
				b.Fatal(err)
			}
			scenarios = len(r.Campaign.Results)
			if noFork {
				seqSec += elapsed
			} else {
				forkSec += elapsed
			}
		}
	}
	if forkSec > 0 {
		b.ReportMetric(seqSec/forkSec, "fork_speedup_x")
		b.ReportMetric(float64(scenarios*b.N)/forkSec, "scenarios/s")
	}
}

// BenchmarkCheckerOverhead measures the sanity checker's cost (§4.1: the
// paper reports < 0.5% with 10,000 threads): simulation events consumed
// per virtual second with and without the checker.
func BenchmarkCheckerOverhead(b *testing.B) {
	run := func(withChecker bool) uint64 {
		m := machine.New(topology.Bulldozer8(), sched.DefaultConfig(), 7)
		if withChecker {
			c := checker.New(m.Sched, nil, checker.Config{})
			c.Start()
		}
		p := m.NewProc("load", machine.ProcOpts{})
		prog := machine.NewProgram().Compute(5 * sim.Second).Build()
		for i := 0; i < 128; i++ {
			p.Spawn(prog, machine.SpawnOpts{})
		}
		m.Run(2 * sim.Second)
		return m.Eng.Processed()
	}
	var with, without uint64
	for i := 0; i < b.N; i++ {
		without = run(false)
		with = run(true)
	}
	if without > 0 {
		b.ReportMetric(100*float64(with-without)/float64(without), "overhead_pct")
	}
}

// BenchmarkSimulatorThroughput measures raw engine speed: virtual
// nanoseconds simulated per wall nanosecond for a saturated 64-core
// machine.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := machine.New(topology.Bulldozer8(), sched.DefaultConfig().WithFixes(sched.AllFixes()), 7)
		p := m.NewProc("load", machine.ProcOpts{})
		prog := machine.NewProgram().Compute(sim.Second).Build()
		for j := 0; j < 128; j++ {
			p.Spawn(prog, machine.SpawnOpts{})
		}
		m.Run(500 * sim.Millisecond)
	}
}

// BenchmarkWakeupPath measures the wakeup placement decision under both
// policies.
func BenchmarkWakeupPath(b *testing.B) {
	for _, fix := range []bool{false, true} {
		name := "bug"
		if fix {
			name = "fix"
		}
		b.Run(name, func(b *testing.B) {
			cfg := schedsim.DefaultConfig()
			cfg.Features.FixOverloadWakeup = fix
			m := schedsim.NewMachine(schedsim.Bulldozer8(), cfg, 7)
			db := schedsim.NewTPCH(m, schedsim.TPCHOpts{Containers: []int{32, 16, 16}, Autogroups: true, Seed: 1, Scale: 0.5})
			m.Run(50 * schedsim.Millisecond)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.RunQuery(i%22, schedsim.CoreID(i%64), 10*schedsim.Second)
			}
			b.ReportMetric(float64(m.Sched.Counters().WakeupsOnBusy), "wakeups_on_busy")
		})
	}
}
