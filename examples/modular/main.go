// Modular scheduler demo (§5 "Lessons Learned"): the paper proposes a
// scheduler made of a core module that owns the work-conserving invariant
// and optimization modules that merely *suggest* placements. This demo
// runs the Overload-on-Wakeup workload three ways:
//
//  1. the buggy kernel (cache affinity wired directly into wakeup),
//  2. the patched kernel (the paper's fix),
//  3. the buggy kernel with the modular layer attached — the same cache-
//     affinity heuristic, but as an overridable suggestion.
//
// The modular run recovers the fix's performance without touching the
// buggy code path, because infeasible affinity suggestions are vetoed by
// the invariant.
package main

import (
	"fmt"

	schedsim "repro"
	"repro/internal/modsched"
)

func run(fix, modular bool) (total schedsim.Time, report string) {
	cfg := schedsim.DefaultConfig()
	cfg.Features.FixOverloadWakeup = fix
	m := schedsim.NewMachine(schedsim.Bulldozer8(), cfg, 42)
	var cm *modsched.CoreModule
	if modular {
		cm = modsched.Attach(m.Sched, modsched.Config{},
			modsched.CacheAffinity{}, modsched.NUMALocality{})
	}
	db := schedsim.NewTPCH(m, schedsim.DefaultTPCHOpts())
	noise := schedsim.StartNoise(m, schedsim.DefaultNoiseOpts())
	defer noise.Stop()
	m.Run(50 * schedsim.Millisecond)
	lats, ok := db.RunAll(60 * schedsim.Second)
	if !ok {
		panic("benchmark did not finish")
	}
	for _, l := range lats {
		total += l
	}
	if cm != nil {
		report = cm.String()
	}
	return total, report
}

func main() {
	buggy, _ := run(false, false)
	fixed, _ := run(true, false)
	modular, report := run(false, true)

	fmt.Println("full TPC-H benchmark on the 64-worker database:")
	fmt.Printf("  vanilla (Overload-on-Wakeup bug): %v\n", buggy)
	fmt.Printf("  patched kernel:                   %v\n", fixed)
	fmt.Printf("  buggy kernel + modular layer:     %v\n", modular)
	fmt.Println()
	fmt.Print(report)
	fmt.Println("\nthe cache-affinity heuristic still runs — but as a suggestion the")
	fmt.Println("core module overrides whenever accepting it would idle a core.")
}
