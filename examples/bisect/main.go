// Example: bisecting the bug-fix lattice programmatically.
//
// This runs the 2^4 fix lattice for the Table 1 pinned NAS run on the
// paper's Bulldozer machine, prints the computed verdict, and then pulls
// the individual answers out of the report: the minimal fix set that
// removes the group-construction episodes, and the non-monotone edge
// showing the min-load fix re-introducing violations under pinning.
//
// Run with:
//
//	go run ./examples/bisect
package main

import (
	"fmt"
	"log"

	"repro/internal/bisect"
	"repro/internal/sim"
)

func main() {
	o := bisect.SmokeOptions()
	o.BaseSeed = 42
	r, err := bisect.Run(o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(r.FormatSummary())

	// The Table 1 attribution, machine-checked: which minimal fix set
	// removes the pinned run's idle-while-overloaded episodes?
	cell := r.Cell("bulldozer8", "nas-pin:lu", 1)
	if cell == nil {
		log.Fatal("nas-pin cell missing")
	}
	fmt.Printf("\nTable 1 pinning pathology: %d episodes (%v idle-while-overloaded), minimal fix set(s): %v\n",
		cell.BaselineViolations, sim.Time(cell.BaselineIdleNs), cell.MinimalFixSets)

	// The interaction report: adding a fix can hurt. Under pinning the
	// min-load comparison (fix-gi) sees min load 0 in every overlapping
	// group — pinned-away nodes are idle — and stops balancing.
	for _, in := range cell.Interactions {
		if in.Added == "gi" {
			fmt.Printf("non-monotone: {%s} + %s re-introduces %v of idle-while-overloaded time (%v before)\n",
				in.Base, in.Added, sim.Time(in.CombinedIdleNs), sim.Time(in.BaseIdleNs))
		}
	}

	// The raw lattice points stay available through the embedded
	// campaign artifact, keyed like any campaign scenario.
	buggy := r.Campaign.Result("bulldozer8/nas-pin:lu/fx-none/s1")
	fixed := r.Campaign.Result("bulldozer8/nas-pin:lu/fx-gc/s1")
	fmt.Printf("makespan %v with the bugs, %v with the group-construction fix (%.1fx)\n",
		sim.Time(buggy.MakespanNs), sim.Time(fixed.MakespanNs),
		float64(buggy.MakespanNs)/float64(fixed.MakespanNs))
}
