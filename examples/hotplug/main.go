// Missing Scheduling Domains demo (§3.4 / Table 3 / Figure 5): disable
// and re-enable a core, launch a parallel application, and watch the
// online sanity checker (§4.1) catch the work-conservation violation that
// results — threads confined to one node while seven others idle.
package main

import (
	"fmt"

	schedsim "repro"
)

func run(fix bool) {
	topo := schedsim.Bulldozer8()
	cfg := schedsim.DefaultConfig()
	cfg.Features.FixMissingDomains = fix
	m := schedsim.NewMachine(topo, cfg, 42)

	// The /proc hotplug cycle that triggers the bug.
	if err := m.DisableCore(63); err != nil {
		panic(err)
	}
	if err := m.EnableCore(63); err != nil {
		panic(err)
	}

	// Attach the sanity checker: check every 200ms of virtual time,
	// confirm violations that persist 100ms.
	chk := schedsim.NewChecker(m.Sched, nil, schedsim.CheckerConfig{S: 200 * schedsim.Millisecond})
	chk.Start()

	// A 32-thread compute job forked on node 0.
	ep, _ := schedsim.NASAppByName("ep")
	p := ep.Launch(m, schedsim.NASLaunchOpts{Threads: 32, SpawnCore: 0, Seed: 42})
	end, _ := m.RunUntilDone(30*schedsim.Second, p)

	// Where did the threads run?
	perNode := map[schedsim.NodeID]schedsim.Time{}
	for _, th := range p.Threads() {
		perNode[topo.NodeOf(th.T.CPU())] += th.T.SumExec()
	}
	label := "with Missing Scheduling Domains bug"
	if fix {
		label = "with fix"
	}
	fmt.Printf("=== %s ===\n", label)
	fmt.Printf("finished at %v; sanity checker confirmed %d violations (%d transients)\n",
		end, len(chk.Violations()), chk.Transients())
	for n := schedsim.NodeID(0); int(n) < topo.NumNodes(); n++ {
		fmt.Printf("  node %d CPU time: %v\n", n, perNode[n])
	}
	if len(chk.Violations()) > 0 {
		fmt.Printf("  first report: %s\n", chk.Violations()[0])
	}
	fmt.Println()
}

func main() {
	run(false)
	run(true)
}
