// Example: running a scenario campaign programmatically.
//
// This builds a custom matrix (rather than a preset), runs it on a
// worker pool, prints the summary, writes the JSON artifact, and then
// demonstrates baseline comparison by diffing the campaign against
// itself run under a different worker count — which, by the campaign
// determinism guarantee, reports zero regressions on identical bytes.
//
// Run with:
//
//	go run ./examples/campaign
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/campaign"
	"repro/internal/sim"
)

func main() {
	// A 12-scenario matrix: the paper's machine and a flat SMP control,
	// the pinned Table 1 workload and the §3.1 make+R mix, under the
	// studied kernel, the Group Construction fix, and all fixes.
	m := campaign.Matrix{
		Topologies: []campaign.TopologySpec{topo("bulldozer8"), topo("smp8")},
		Workloads:  []campaign.Workload{load("nas-pin:lu"), load("make2r")},
		Configs:    []campaign.ConfigSpec{config("bugs"), config("fix-gc"), config("fixed")},
		Seeds:      []int64{1},
		Scale:      0.25,
		Horizon:    100 * sim.Second,
	}

	c, err := campaign.Run(m, campaign.RunnerOpts{Workers: 4, BaseSeed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(c.FormatSummary())

	// The headline contrast: pinned lu with and without the paper's
	// §3.2 fix.
	buggy := c.Result("bulldozer8/nas-pin:lu/bugs/s1")
	fixed := c.Result("bulldozer8/nas-pin:lu/fix-gc/s1")
	fmt.Printf("\npinned lu on bulldozer8: %v with the bug, %v with the fix (%.1fx), %v idle-while-overloaded\n",
		sim.Time(buggy.MakespanNs), sim.Time(fixed.MakespanNs),
		float64(buggy.MakespanNs)/float64(fixed.MakespanNs),
		sim.Time(buggy.IdleWhileOverloadedNs))

	// Write the artifact, re-run with a different worker count, and
	// compare: byte-identical, so the diff is clean.
	dir, err := os.MkdirTemp("", "campaign")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "baseline.json")
	if err := c.WriteFile(path); err != nil {
		log.Fatal(err)
	}
	base, err := campaign.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	again, err := campaign.Run(m, campaign.RunnerOpts{Workers: 1, BaseSeed: 42})
	if err != nil {
		log.Fatal(err)
	}
	a, _ := c.EncodeJSON()
	b, _ := again.EncodeJSON()
	fmt.Printf("\nworkers=4 vs workers=1 artifacts byte-identical: %v\n", bytes.Equal(a, b))
	fmt.Print(campaign.FormatComparison(campaign.Compare(base, again, 2)))
}

func topo(name string) campaign.TopologySpec {
	t, ok := campaign.TopologyByName(name)
	if !ok {
		log.Fatalf("unknown topology %q", name)
	}
	return t
}

func load(name string) campaign.Workload {
	w, ok := campaign.WorkloadByName(name)
	if !ok {
		log.Fatalf("unknown workload %q", name)
	}
	return w
}

func config(name string) campaign.ConfigSpec {
	c, ok := campaign.ConfigByName(name)
	if !ok {
		log.Fatalf("unknown config %q", name)
	}
	return c
}
