// Quickstart: build a simulated NUMA machine, run a small parallel
// program, and inspect where threads ran and how fairly CPU time was
// divided.
package main

import (
	"fmt"

	schedsim "repro"
)

func main() {
	// A 2-node, 8-core machine running the kernel the paper studied
	// (all four bugs present). Pass schedsim.AllFixes() to Features to
	// run the repaired scheduler instead.
	cfg := schedsim.DefaultConfig()
	m := schedsim.NewMachine(schedsim.TwoNode(4), cfg, 1)

	// One process with 8 compute threads, all forked on core 0 — the
	// load balancer must spread them across both nodes.
	p := m.NewProc("app", schedsim.ProcOpts{})
	prog := schedsim.NewProgram().
		Compute(20 * schedsim.Millisecond).
		Sleep(2 * schedsim.Millisecond). // a little I/O
		Compute(20 * schedsim.Millisecond).
		Build()
	for i := 0; i < 8; i++ {
		p.SpawnOn(0, prog, schedsim.SpawnOpts{})
	}

	end, ok := m.RunUntilDone(schedsim.Second, p)
	fmt.Printf("finished=%v at %v (ideal: ~42ms)\n\n", ok, end)

	fmt.Println("thread placement and CPU time:")
	for _, th := range p.Threads() {
		fmt.Printf("  thread %2d: last core %2d (node %d), ran %-8v migrations %d\n",
			th.T.ID(), th.T.CPU(), m.Topo.NodeOf(th.T.CPU()), th.T.SumExec(), th.T.Migrations())
	}

	c := m.Sched.Counters()
	fmt.Printf("\nscheduler: %d switches, %d migrations, %d balance calls\n",
		c.Switches, c.Migrations, c.BalanceCalls)
	fmt.Printf("wasted core time (idle while work waited): %v\n", m.Sched.WastedCoreTime())
}
