// Example: running a scheduler-policy tournament programmatically.
//
// This pits the studied kernel, the fixed kernel, the shared global
// queue and the greedy-idlest placement variant against each other on
// the smoke cells, prints the verdict tables, and then pulls individual
// answers out of the report: the makespan winner per cell and the
// non-monotone pairs where neither policy dominates.
//
// Run with:
//
//	go run ./examples/tourney
package main

import (
	"fmt"
	"log"

	"repro/internal/campaign"
	"repro/internal/sim"
	"repro/internal/tourney"
)

func main() {
	o := tourney.SmokeOptions()
	o.BaseSeed = 42
	o.Policies = campaign.MustConfigs("bugs", "fixed", "globalq-shared", "greedy-idlest")
	r, err := tourney.Run(o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(r.FormatSummary())

	// Per-cell makespan winners, straight off the verdicts.
	fmt.Println()
	for i := range r.Cells {
		c := &r.Cells[i]
		for _, v := range c.Verdicts {
			if v.Axis == tourney.AxisMakespan {
				fmt.Printf("%s: fastest policy %s (%v)\n", c.Key(), v.Best, sim.Time(v.BestValue))
			}
		}
	}

	// The interaction list: policy pairs that beat each other in
	// different cells — the evidence that the right scheduler depends on
	// the (topology, workload) point.
	for _, f := range r.Flips {
		fmt.Printf("no dominance on %s: %s vs %s (%d vs %d cells)\n",
			f.Axis, f.A, f.B, len(f.ACells), len(f.BCells))
	}
}
