// Overload-on-Wakeup demo (§3.3 / Table 2): a 64-worker database running
// TPC-H-like queries next to transient kernel noise. With the bug,
// wakeups only consider the waker's node, so workers pile onto busy cores
// while other nodes idle; the fix wakes them on the longest-idle core.
package main

import (
	"fmt"

	schedsim "repro"
)

func run(fix bool) (q18, full schedsim.Time) {
	cfg := schedsim.DefaultConfig()
	cfg.Features.FixOverloadWakeup = fix
	m := schedsim.NewMachine(schedsim.Bulldozer8(), cfg, 42)

	db := schedsim.NewTPCH(m, schedsim.DefaultTPCHOpts())
	noise := schedsim.StartNoise(m, schedsim.DefaultNoiseOpts())
	defer noise.Stop()
	m.Run(50 * schedsim.Millisecond) // workers spread and park

	lats, ok := db.RunAll(60 * schedsim.Second)
	if !ok {
		panic("benchmark did not finish")
	}
	for q, l := range lats {
		full += l
		if q == 17 { // TPC-H Q18
			q18 = l
		}
	}
	c := m.Sched.Counters()
	label := "bug"
	if fix {
		label = "fix"
	}
	fmt.Printf("%s: Q18=%-10v full=%-10v wakeups on busy cores=%d\n",
		label, q18, full, c.WakeupsOnBusy)
	return q18, full
}

func main() {
	fmt.Println("TPC-H on the 64-worker database (paper Table 2)")
	bq18, bfull := run(false)
	fq18, ffull := run(true)
	fmt.Printf("\nOverload-on-Wakeup fix: Q18 %+.1f%% (paper -22.2%%), full %+.1f%% (paper -13.2%%)\n",
		100*(fq18.Seconds()-bq18.Seconds())/bq18.Seconds(),
		100*(ffull.Seconds()-bfull.Seconds())/bfull.Seconds())
}
