// Group Imbalance demo (§3.1 / Figure 2): a 64-thread make and two
// single-threaded high-load R processes on the 64-core machine. With the
// bug, the nodes hosting the R threads keep idle cores — their *average*
// load looks high — while make crowds the other nodes two-deep. The demo
// renders the runqueue heatmap both ways and writes a binary trace that
// cmd/schedviz can re-render.
package main

import (
	"fmt"
	"os"

	schedsim "repro"
)

func run(fix bool) {
	topo := schedsim.Bulldozer8()
	cfg := schedsim.DefaultConfig()
	cfg.Features.FixGroupImbalance = fix

	m := schedsim.NewMachine(topo, cfg, 42)
	rec := schedsim.NewRecorder(1 << 20)
	m.SetRecorder(rec)

	// Two R processes (own ttys) and one make -j64 (a third tty).
	schedsim.LaunchR(m, topo.CoresOfNode(0)[0], 10*schedsim.Second)
	schedsim.LaunchR(m, topo.CoresOfNode(4)[0], 10*schedsim.Second)
	mk := schedsim.DefaultMakeOpts()
	mk.SpawnCore = topo.CoresOfNode(2)[0]
	mkProc := schedsim.LaunchMake(m, mk)

	m.Run(60 * schedsim.Millisecond)
	rec.Start()
	m.Sched.EmitSnapshot()
	m.Run(120 * schedsim.Millisecond)
	rec.Stop()
	end, _ := m.RunUntilDone(10*schedsim.Second, mkProc)

	label := "with Group Imbalance bug"
	if fix {
		label = "with minimum-load fix"
	}
	fmt.Printf("=== %s: make finished at %v ===\n", label, end)
	heat := schedsim.RQSizeHeatmap(rec.Events(), topo.NumCores(), 120,
		60*schedsim.Millisecond, 180*schedsim.Millisecond)
	heat.RowGroup = func(r int) int { return int(topo.NodeOf(schedsim.CoreID(r))) }
	fmt.Print(heat.ASCII(2))
	fmt.Println()

	if !fix {
		// Save the buggy trace for cmd/schedviz.
		f, err := os.Create("groupimbalance.trace")
		if err == nil {
			defer f.Close()
			if _, err := rec.WriteTo(f); err == nil {
				fmt.Println("wrote groupimbalance.trace (render with: go run ./cmd/schedviz -trace groupimbalance.trace)")
			}
		}
	}
}

func main() {
	run(false)
	run(true)
}
