#!/usr/bin/env bash
# dist-smoke: the CI gate for distributed campaigns.
#
# Builds campaign, campaignd and campaignw under the race detector,
# produces the single-process smoke artifact as the reference, then runs
# the same matrix through a coordinator + two local workers under a
# series of injected faults — a clean run, a worker killed mid-shard, a
# straggler shard (exercising work stealing and duplicate discard), and
# a corrupted check-in payload. Every case must produce a merged
# artifact byte-identical (cmp) to the single-process one AND pass the
# committed baselines/campaign-smoke.json regression gate.
#
# Also asserts the CLI usage contract for -shard: malformed or
# out-of-range specs exit 2 on both campaign and bisect.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
tmp=$(mktemp -d)
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== dist-smoke: building (race) =="
$GO build -race -o "$tmp/campaign" ./cmd/campaign
$GO build -race -o "$tmp/campaignd" ./cmd/campaignd
$GO build -race -o "$tmp/campaignw" ./cmd/campaignw
$GO build -race -o "$tmp/bisect" ./cmd/bisect

echo "== dist-smoke: single-process reference artifact =="
"$tmp/campaign" -matrix smoke -q -out "$tmp/local.json" 2>"$tmp/local.log"

# start_worker <name> <fault-plan>: launch a campaignw on :0 and export
# <name>_url once the port file appears.
start_worker() {
    local name=$1 fault=$2
    rm -f "$tmp/$name.port"
    if [ -n "$fault" ]; then
        "$tmp/campaignw" -listen 127.0.0.1:0 -port-file "$tmp/$name.port" \
            -id "$name" -fault "$fault" 2>"$tmp/$name.log" &
    else
        "$tmp/campaignw" -listen 127.0.0.1:0 -port-file "$tmp/$name.port" \
            -id "$name" 2>"$tmp/$name.log" &
    fi
    pids+=($!)
    for _ in $(seq 100); do
        [ -s "$tmp/$name.port" ] && break
        sleep 0.05
    done
    if [ ! -s "$tmp/$name.port" ]; then
        echo "dist-smoke: worker $name failed to start:"
        cat "$tmp/$name.log"
        exit 1
    fi
    eval "${name}_url=http://127.0.0.1:\$(cat "$tmp/$name.port")"
}

# run_case <name> <w1-fault> <w2-fault> [extra campaignd flags...]
run_case() {
    local name=$1 f1=$2 f2=$3
    shift 3
    echo "== dist-smoke: case $name (faults: ${f1:-none} / ${f2:-none}) =="
    start_worker w1 "$f1"
    start_worker w2 "$f2"
    if ! "$tmp/campaignd" -matrix smoke -q \
        -workers "$w1_url,$w2_url" -shard-size 2 "$@" \
        -out "$tmp/dist-$name.json" \
        -baseline baselines/campaign-smoke.json \
        -diff-out "dist-smoke-$name-diff.txt" 2>"$tmp/d-$name.log"; then
        echo "dist-smoke: coordinator failed for case $name:"
        cat "$tmp/d-$name.log" "$tmp/w1.log" "$tmp/w2.log"
        exit 1
    fi
    if ! cmp "$tmp/dist-$name.json" "$tmp/local.json"; then
        echo "dist-smoke: case $name artifact is NOT byte-identical to the single-process run"
        cat "$tmp/d-$name.log"
        exit 1
    fi
    echo "   merged artifact byte-identical to single-process run; baseline gate clean"
    for p in "${pids[@]}"; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    pids=()
}

run_case plain "" ""
run_case kill "kill:nth=1" ""
run_case delay "delay:nth=1,ms=8000" "" -straggler-after 1 -shard-timeout 20
run_case corrupt "corrupt:nth=1" ""

echo "== dist-smoke: -shard usage validation (must exit 2) =="
expect_exit() {
    local want=$1
    shift
    local got=0
    "$@" >/dev/null 2>&1 || got=$?
    if [ "$got" != "$want" ]; then
        echo "dist-smoke: FAIL: '$*' exited $got, want $want"
        exit 1
    fi
}
for spec in banana 0/3 4/3 1/0 -2/3 1.5/3 3 a/b; do
    expect_exit 2 "$tmp/campaign" -matrix smoke -shard "$spec" -out /dev/null
    expect_exit 2 "$tmp/bisect" -preset smoke -shard "$spec" -out /dev/null
done
echo "   malformed and out-of-range -shard specs exit 2 on campaign and bisect"

echo "dist-smoke: OK"
