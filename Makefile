# Build / verify targets. `make ci` is what every PR must keep green:
# the race detector covers the campaign runner's worker pool, and the
# smoke artifacts are gated against the committed rolling baselines in
# baselines/ — a scheduler-model change that shifts any scenario's
# metrics fails the smoke targets with a per-scenario diff. The
# underlying CLIs exit 3 on regression (vs 2 usage, 1 IO/runtime);
# make itself folds any recipe failure into its own exit code, so
# scripts that need the distinction invoke the CLIs directly or check
# for a non-empty *-diff.txt (what .github/workflows/ci.yml does).

GO ?= go

# Recipes pipe `go test` through tee (bench-out.txt); without pipefail a
# benchmark build failure or panic would exit 0 through tee and CI would
# gate on truncated output.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

.PHONY: all build vet lint test race bench bench-out.txt bench-json \
	bench-baseline-refresh profile campaign bisect tourney bisect-smoke \
	campaign-smoke tourney-smoke explain-smoke trace-smoke dist-smoke \
	bisect-nightly campaign-nightly baseline-refresh ci nightly

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt must be clean and vet quiet.
lint:
	@drift="$$(gofmt -l .)"; if [ -n "$$drift" ]; then \
		echo "gofmt drift in:"; echo "$$drift"; exit 1; fi
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark at minimal iterations; full runs use
# `go test -bench=. -benchtime=...` directly.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

# The pinned perf-trajectory suite: the campaign throughput benchmark
# (events/s + scenarios/s) plus the engine microbenchmarks, parsed into
# a machine-readable report and gated against the committed allocation
# baseline (allocs/op only — wall clock is not comparable across
# machines). Exit 3 from benchjson = an allocation regression. The
# -max-allocs-per-event bound additionally asserts that obs-disabled
# campaign runs stay at or under one allocation per simulation event,
# so the observability hooks keep compiling down to a nil-check.
BENCH_PKG_ARGS  = -run '^$$' -bench 'BenchmarkCampaign|BenchmarkSimulatorThroughput' -benchmem -benchtime 5x .
BENCH_SIM_ARGS  = -run '^$$' -bench 'BenchmarkEngine|BenchmarkEvent' -benchmem -benchtime 1s ./internal/sim

bench-out.txt:
	@rm -f $@
	$(GO) test $(BENCH_PKG_ARGS) | tee -a $@
	$(GO) test $(BENCH_SIM_ARGS) | tee -a $@

bench-json: bench-out.txt
	$(GO) run ./cmd/benchjson -in bench-out.txt -out BENCH_campaign.json \
		-baseline baselines/bench-smoke.json -max-allocs-per-event 1

# Re-pin the allocation baseline after an intentional change (commit the
# result, like the campaign/bisect baselines).
bench-baseline-refresh: bench-out.txt
	$(GO) run ./cmd/benchjson -in bench-out.txt -out baselines/bench-smoke.json

# Capture CPU + allocation profiles of the campaign hot path. Explore
# with `go tool pprof -http=:8080 cpu.prof` (View > Flame Graph), or
# `go tool pprof -top cpu.prof` in a terminal.
profile:
	$(GO) test -run '^$$' -bench 'BenchmarkCampaign/workers=1$$' -benchtime 5x \
		-cpuprofile cpu.prof -memprofile mem.prof .
	@echo "profiles written: cpu.prof mem.prof"
	@echo "flamegraph: go tool pprof -http=:8080 cpu.prof"

# The standard 30-scenario campaign at a fast scale, artifact to
# campaign.json. Shard it with `-shard i/n` + `-merge`, or re-run
# incrementally with `-incremental campaign.json`.
campaign:
	$(GO) run ./cmd/campaign -matrix default -scale 0.25 -out campaign.json

# The full 128-cell fix-set bisection, artifact to bisect.json.
bisect:
	$(GO) run ./cmd/bisect -preset default -out bisect.json

# The 54-scenario policy tournament (both paper machines x three
# workloads x the nine-policy lineup), artifact to tourney.json.
tourney:
	$(GO) run ./cmd/tourney -preset default -out tourney.json

# The CI lattice: 48 scenarios under the race detector, gated against
# the committed rolling baseline ("exit status 3" in the output = a
# per-scenario regression, written to bisect-smoke-diff.txt). The second
# run repeats the sweep through the sequential runner and cmp asserts
# the forked runner's artifact is byte-identical to it — the
# checkpoint/fork equivalence contract, enforced on every push.
bisect-smoke:
	$(GO) run -race ./cmd/bisect -preset smoke -q -out bisect-smoke.json \
		-baseline baselines/bisect-smoke.json -diff-out bisect-smoke-diff.txt
	$(GO) run -race ./cmd/bisect -preset smoke -q -no-fork -out bisect-smoke-nofork.json
	cmp bisect-smoke.json bisect-smoke-nofork.json

# The CI campaign: the 8-scenario smoke matrix, gated the same way.
campaign-smoke:
	$(GO) run ./cmd/campaign -matrix smoke -q -out campaign-smoke.json \
		-baseline baselines/campaign-smoke.json -diff-out campaign-smoke-diff.txt

# The CI tournament: 18 scenarios (bulldozer8 x {make2r, nas-pin:lu} x
# nine policies), gated on two levels against the committed rolling
# baseline: raw campaign metrics (like the other smoke gates) and the
# per-cell policy verdicts — "exit status 3" here means a policy's
# winner circle changed, written to tourney-smoke-diff.txt.
tourney-smoke:
	$(GO) run ./cmd/tourney -preset smoke -q -out tourney-smoke.json \
		-baseline baselines/tourney-smoke.json -diff-out tourney-smoke-diff.txt

# The CI causal-observability gate: the smoke lattice with decision
# provenance and counterfactual episode replay (-explain), distilled by
# cmd/explain into just the explain data and gated against the
# committed rolling baseline — "exit status 3" here means an episode's
# counterfactual attribution or a cell's minimal-set cross-check
# changed, written to explain-smoke-diff.txt.
explain-smoke:
	$(GO) run ./cmd/bisect -preset smoke -explain -q -out explain-bisect.json
	$(GO) run ./cmd/explain -in explain-bisect.json -q -out explain-smoke.json \
		-baseline baselines/explain-smoke.json -diff-out explain-smoke-diff.txt

# The CI distributed-campaign gate: coordinator + two local workers
# under the race detector, with injected faults (worker killed
# mid-shard, straggler shard stolen, corrupted check-in). Each case's
# merged artifact must be byte-identical (cmp) to the single-process
# smoke artifact and clean against baselines/campaign-smoke.json; the
# script also asserts the -shard usage contract (bad specs exit 2).
dist-smoke:
	./scripts/dist-smoke.sh

# Export a Perfetto/Chrome trace of the smoke matrix's lead scenario
# (a side run — artifact bytes are unaffected). Open trace-smoke.json
# at https://ui.perfetto.dev; CI uploads it as a workflow artifact.
trace-smoke:
	$(GO) run ./cmd/campaign -matrix smoke -q -out /dev/null \
		-trace-out trace-smoke.json

# The nightly gates: the default-scale sweeps (too slow for every push)
# against their committed baselines. Run by .github/workflows/nightly.yml
# on a schedule and on demand.
bisect-nightly:
	$(GO) run ./cmd/bisect -preset default -q -out bisect-default.json \
		-baseline baselines/bisect-default.json -diff-out bisect-default-diff.txt

campaign-nightly:
	$(GO) run ./cmd/campaign -matrix default -scale 0.25 -q -out campaign-default.json \
		-baseline baselines/campaign-default.json -diff-out campaign-default-diff.txt

# Run both gates even when the first regresses (a same-night campaign
# regression must not be masked by a bisect one, and CI uploads both
# artifacts either way); fail if either did.
nightly:
	@rc=0; \
	$(MAKE) bisect-nightly || rc=1; \
	$(MAKE) campaign-nightly || rc=1; \
	exit $$rc

# Regenerate the committed rolling baselines after an *intentional*
# scheduler-model change (commit the result; CI diffs against these).
# Covers both the per-push smoke baselines and the nightly default-scale
# ones, so additive artifact fields land in all four at once.
baseline-refresh:
	$(GO) run ./cmd/bisect -preset smoke -q -out baselines/bisect-smoke.json
	$(GO) run ./cmd/campaign -matrix smoke -q -out baselines/campaign-smoke.json
	$(GO) run ./cmd/tourney -preset smoke -q -out baselines/tourney-smoke.json
	$(GO) run ./cmd/bisect -preset smoke -explain -q -out explain-bisect.json
	$(GO) run ./cmd/explain -in explain-bisect.json -q -out baselines/explain-smoke.json
	$(GO) run ./cmd/bisect -preset default -q -out baselines/bisect-default.json
	$(GO) run ./cmd/campaign -matrix default -scale 0.25 -q -out baselines/campaign-default.json

ci: lint build race bisect-smoke campaign-smoke tourney-smoke explain-smoke dist-smoke
