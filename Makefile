# Build / verify targets. `make ci` is what every PR must keep green:
# the race detector covers the campaign runner's worker pool, and the
# smoke artifacts are gated against the committed rolling baselines in
# baselines/ — a scheduler-model change that shifts any scenario's
# metrics fails the smoke targets with a per-scenario diff. The
# underlying CLIs exit 3 on regression (vs 2 usage, 1 IO/runtime);
# make itself folds any recipe failure into its own exit code, so
# scripts that need the distinction invoke the CLIs directly or check
# for a non-empty *-diff.txt (what .github/workflows/ci.yml does).

GO ?= go

.PHONY: all build vet lint test race bench campaign bisect bisect-smoke campaign-smoke \
	bisect-nightly campaign-nightly baseline-refresh ci nightly

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt must be clean and vet quiet.
lint:
	@drift="$$(gofmt -l .)"; if [ -n "$$drift" ]; then \
		echo "gofmt drift in:"; echo "$$drift"; exit 1; fi
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark at minimal iterations; full runs use
# `go test -bench=. -benchtime=...` directly.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

# The standard 30-scenario campaign at a fast scale, artifact to
# campaign.json. Shard it with `-shard i/n` + `-merge`, or re-run
# incrementally with `-incremental campaign.json`.
campaign:
	$(GO) run ./cmd/campaign -matrix default -scale 0.25 -out campaign.json

# The full 128-cell fix-set bisection, artifact to bisect.json.
bisect:
	$(GO) run ./cmd/bisect -preset default -out bisect.json

# The CI lattice: 32 scenarios under the race detector, gated against
# the committed rolling baseline ("exit status 3" in the output = a
# per-scenario regression, written to bisect-smoke-diff.txt).
bisect-smoke:
	$(GO) run -race ./cmd/bisect -preset smoke -q -out bisect-smoke.json \
		-baseline baselines/bisect-smoke.json -diff-out bisect-smoke-diff.txt

# The CI campaign: the 8-scenario smoke matrix, gated the same way.
campaign-smoke:
	$(GO) run ./cmd/campaign -matrix smoke -q -out campaign-smoke.json \
		-baseline baselines/campaign-smoke.json -diff-out campaign-smoke-diff.txt

# The nightly gates: the default-scale sweeps (too slow for every push)
# against their committed baselines. Run by .github/workflows/nightly.yml
# on a schedule and on demand.
bisect-nightly:
	$(GO) run ./cmd/bisect -preset default -q -out bisect-default.json \
		-baseline baselines/bisect-default.json -diff-out bisect-default-diff.txt

campaign-nightly:
	$(GO) run ./cmd/campaign -matrix default -scale 0.25 -q -out campaign-default.json \
		-baseline baselines/campaign-default.json -diff-out campaign-default-diff.txt

# Run both gates even when the first regresses (a same-night campaign
# regression must not be masked by a bisect one, and CI uploads both
# artifacts either way); fail if either did.
nightly:
	@rc=0; \
	$(MAKE) bisect-nightly || rc=1; \
	$(MAKE) campaign-nightly || rc=1; \
	exit $$rc

# Regenerate the committed rolling baselines after an *intentional*
# scheduler-model change (commit the result; CI diffs against these).
# Covers both the per-push smoke baselines and the nightly default-scale
# ones, so additive artifact fields land in all four at once.
baseline-refresh:
	$(GO) run ./cmd/bisect -preset smoke -q -out baselines/bisect-smoke.json
	$(GO) run ./cmd/campaign -matrix smoke -q -out baselines/campaign-smoke.json
	$(GO) run ./cmd/bisect -preset default -q -out baselines/bisect-default.json
	$(GO) run ./cmd/campaign -matrix default -scale 0.25 -q -out baselines/campaign-default.json

ci: lint build race bisect-smoke campaign-smoke
