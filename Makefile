# Build / verify targets. `make ci` is what every PR must keep green:
# the race detector covers the campaign runner's worker pool.

GO ?= go

.PHONY: all build vet test race bench campaign bisect bisect-smoke ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark at minimal iterations; full runs use
# `go test -bench=. -benchtime=...` directly.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

# The standard 30-scenario campaign at a fast scale, artifact to
# campaign.json.
campaign:
	$(GO) run ./cmd/campaign -matrix default -scale 0.25 -out campaign.json

# The full 128-cell fix-set bisection, artifact to bisect.json.
bisect:
	$(GO) run ./cmd/bisect -preset default -out bisect.json

# The CI lattice: 32 scenarios under the race detector, artifact kept so
# it can serve as a rolling baseline (`-baseline bisect-smoke.json`).
bisect-smoke:
	$(GO) run -race ./cmd/bisect -preset smoke -q -out bisect-smoke.json

ci: build vet race bisect-smoke
