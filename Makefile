# Build / verify targets. `make ci` is what every PR must keep green:
# the race detector covers the campaign runner's worker pool, and the
# smoke artifacts are gated against the committed rolling baselines in
# baselines/ — a scheduler-model change that shifts any scenario's
# metrics fails the smoke targets with a per-scenario diff. The
# underlying CLIs exit 3 on regression (vs 2 usage, 1 IO/runtime);
# make itself folds any recipe failure into its own exit code, so
# scripts that need the distinction invoke the CLIs directly or check
# for a non-empty *-diff.txt (what .github/workflows/ci.yml does).

GO ?= go

.PHONY: all build vet lint test race bench campaign bisect bisect-smoke campaign-smoke baseline-refresh ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt must be clean and vet quiet.
lint:
	@drift="$$(gofmt -l .)"; if [ -n "$$drift" ]; then \
		echo "gofmt drift in:"; echo "$$drift"; exit 1; fi
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark at minimal iterations; full runs use
# `go test -bench=. -benchtime=...` directly.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

# The standard 30-scenario campaign at a fast scale, artifact to
# campaign.json. Shard it with `-shard i/n` + `-merge`, or re-run
# incrementally with `-incremental campaign.json`.
campaign:
	$(GO) run ./cmd/campaign -matrix default -scale 0.25 -out campaign.json

# The full 128-cell fix-set bisection, artifact to bisect.json.
bisect:
	$(GO) run ./cmd/bisect -preset default -out bisect.json

# The CI lattice: 32 scenarios under the race detector, gated against
# the committed rolling baseline ("exit status 3" in the output = a
# per-scenario regression, written to bisect-smoke-diff.txt).
bisect-smoke:
	$(GO) run -race ./cmd/bisect -preset smoke -q -out bisect-smoke.json \
		-baseline baselines/bisect-smoke.json -diff-out bisect-smoke-diff.txt

# The CI campaign: the 8-scenario smoke matrix, gated the same way.
campaign-smoke:
	$(GO) run ./cmd/campaign -matrix smoke -q -out campaign-smoke.json \
		-baseline baselines/campaign-smoke.json -diff-out campaign-smoke-diff.txt

# Regenerate the committed rolling baselines after an *intentional*
# scheduler-model change (commit the result; CI diffs against these).
baseline-refresh:
	$(GO) run ./cmd/bisect -preset smoke -q -out baselines/bisect-smoke.json
	$(GO) run ./cmd/campaign -matrix smoke -q -out baselines/campaign-smoke.json

ci: lint build race bisect-smoke campaign-smoke
