// Ablation benchmarks for the design choices DESIGN.md calls out: the
// NOHZ handoff, balancing cadence, cache-hot migration gating, adaptive
// vs pure-spin barriers, and the §5 modular layer. Each reports the
// quantity the choice affects as a custom metric.
package schedsim_test

import (
	"fmt"
	"testing"

	"repro/internal/globalq"
	"repro/internal/machine"
	"repro/internal/modsched"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// spreadTime measures how long the balancer takes to give all 64 stacked
// threads their own core under the given config.
func spreadTime(cfg sched.Config) sim.Time {
	m := machine.New(topology.Bulldozer8(), cfg, 7)
	p := m.NewProc("load", machine.ProcOpts{})
	prog := machine.NewProgram().Compute(10 * sim.Second).Build()
	for i := 0; i < 64; i++ {
		p.SpawnOn(0, prog, machine.SpawnOpts{})
	}
	step := sim.Millisecond
	for m.Eng.Now() < 2*sim.Second {
		m.Run(step)
		balanced := true
		for c := 0; c < 64; c++ {
			if m.Sched.NrRunning(topology.CoreID(c)) != 1 {
				balanced = false
				break
			}
		}
		if balanced {
			return m.Eng.Now()
		}
	}
	return 2 * sim.Second
}

// BenchmarkAblationNOHZ compares spread time with tickless idle (the
// kernel default since 2.6.21, §2.2.2) against always-ticking idle cores.
// NOHZ trades idle power for slower reaction: idle cores must be kicked.
func BenchmarkAblationNOHZ(b *testing.B) {
	for _, nohz := range []bool{true, false} {
		name := "tickless"
		if !nohz {
			name = "ticking"
		}
		b.Run(name, func(b *testing.B) {
			var t sim.Time
			for i := 0; i < b.N; i++ {
				cfg := sched.DefaultConfig().WithFixes(sched.AllFixes())
				cfg.NOHZ = nohz
				t = spreadTime(cfg)
			}
			b.ReportMetric(t.Seconds()*1000, "spread_ms")
		})
	}
}

// BenchmarkAblationBalanceInterval sweeps the base periodic-balance
// cadence (the paper's observed 4ms): faster balancing reacts sooner but
// runs the expensive procedure more often.
func BenchmarkAblationBalanceInterval(b *testing.B) {
	for _, interval := range []sim.Time{sim.Millisecond, 4 * sim.Millisecond, 16 * sim.Millisecond} {
		b.Run(fmt.Sprintf("%v", interval), func(b *testing.B) {
			var t sim.Time
			var calls uint64
			for i := 0; i < b.N; i++ {
				cfg := sched.DefaultConfig().WithFixes(sched.AllFixes())
				cfg.BalanceInterval = interval
				m := machine.New(topology.Bulldozer8(), cfg, 7)
				p := m.NewProc("load", machine.ProcOpts{})
				prog := machine.NewProgram().Compute(sim.Second).Build()
				for j := 0; j < 96; j++ {
					p.SpawnOn(0, prog, machine.SpawnOpts{})
				}
				m.Run(500 * sim.Millisecond)
				t = m.Sched.WastedCoreTime()
				calls = m.Sched.Counters().BalanceCalls
			}
			b.ReportMetric(t.Seconds()*1000, "wasted_core_ms")
			b.ReportMetric(float64(calls), "balance_calls")
		})
	}
}

// BenchmarkAblationMigrationCost sweeps the cache-hot threshold: 0
// migrates eagerly, large values pin threads to stale placements.
func BenchmarkAblationMigrationCost(b *testing.B) {
	for _, cost := range []sim.Time{0, 500 * sim.Microsecond, 5 * sim.Millisecond} {
		b.Run(fmt.Sprintf("%v", cost), func(b *testing.B) {
			var t sim.Time
			for i := 0; i < b.N; i++ {
				cfg := sched.DefaultConfig().WithFixes(sched.AllFixes())
				cfg.MigrationCost = cost
				t = spreadTime(cfg)
			}
			b.ReportMetric(t.Seconds()*1000, "spread_ms")
		})
	}
}

// BenchmarkAblationBarrierWait compares pure-spin against spin-then-block
// barriers for an oversubscribed barrier workload — the §3.2 mechanism
// knob: pure spinning burns whole timeslices while the straggler waits in
// a runqueue.
func BenchmarkAblationBarrierWait(b *testing.B) {
	run := func(blockAfter sim.Time) sim.Time {
		m := machine.New(topology.SMP(4), sched.DefaultConfig().WithFixes(sched.AllFixes()), 7)
		p := m.NewProc("p", machine.ProcOpts{})
		bar := m.NewAdaptiveBarrier(8, blockAfter)
		prog := machine.NewProgram().
			Repeat(50, func(bb *machine.Builder) {
				bb.Compute(200 * sim.Microsecond).Barrier(bar)
			}).
			Build()
		for i := 0; i < 8; i++ {
			p.Spawn(prog, machine.SpawnOpts{})
		}
		end, _ := m.RunUntilDone(30*sim.Second, p)
		return end
	}
	for _, c := range []struct {
		name  string
		block sim.Time
	}{{"pure-spin", 0}, {"block-200us", 200 * sim.Microsecond}, {"block-2ms", 2 * sim.Millisecond}} {
		b.Run(c.name, func(b *testing.B) {
			var t sim.Time
			for i := 0; i < b.N; i++ {
				t = run(c.block)
			}
			b.ReportMetric(t.Seconds()*1000, "makespan_ms")
		})
	}
}

// BenchmarkAblationModular compares the three schedulers of §5 on the
// wakeup-heavy database workload: buggy, patched, and buggy+modular.
func BenchmarkAblationModular(b *testing.B) {
	run := func(fix, modular bool) sim.Time {
		cfg := sched.DefaultConfig()
		cfg.Features.FixOverloadWakeup = fix
		m := machine.New(topology.Bulldozer8(), cfg, 42)
		if modular {
			modsched.Attach(m.Sched, modsched.Config{}, modsched.CacheAffinity{})
		}
		db := workload.NewTPCH(m, workload.TPCHOpts{
			Containers: []int{32, 16, 16}, Autogroups: true, Seed: 42,
		})
		noise := workload.StartNoise(m, workload.DefaultNoiseOpts())
		defer noise.Stop()
		m.Run(50 * sim.Millisecond)
		var total sim.Time
		lats, _ := db.RunAll(60 * sim.Second)
		for _, l := range lats {
			total += l
		}
		return total
	}
	for _, c := range []struct {
		name         string
		fix, modular bool
	}{{"buggy", false, false}, {"patched", true, false}, {"modular", false, true}} {
		b.Run(c.name, func(b *testing.B) {
			var t sim.Time
			for i := 0; i < b.N; i++ {
				t = run(c.fix, c.modular)
			}
			b.ReportMetric(t.Seconds()*1000, "tpch_total_ms")
		})
	}
}

// BenchmarkAblationGroupMetric isolates the Group Imbalance fix's metric
// choice (average vs minimum) on the make + 2xR mix, reporting wasted
// core time.
func BenchmarkAblationGroupMetric(b *testing.B) {
	run := func(min bool) sim.Time {
		topo := topology.Bulldozer8()
		cfg := sched.DefaultConfig()
		cfg.Features.FixGroupImbalance = min
		m := machine.New(topo, cfg, 42)
		workload.LaunchR(m, topo.CoresOfNode(0)[0], 10*sim.Second)
		workload.LaunchR(m, topo.CoresOfNode(4)[0], 10*sim.Second)
		mk := workload.DefaultMakeOpts()
		mk.JobsPerThread = 20
		mk.SpawnCore = topo.CoresOfNode(2)[0]
		workload.LaunchMake(m, mk)
		m.Run(300 * sim.Millisecond)
		return m.Sched.WastedCoreTime()
	}
	for _, c := range []struct {
		name string
		min  bool
	}{{"average-load", false}, {"minimum-load", true}} {
		b.Run(c.name, func(b *testing.B) {
			var t sim.Time
			for i := 0; i < b.N; i++ {
				t = run(c.min)
			}
			b.ReportMetric(t.Seconds()*1000, "wasted_core_ms")
		})
	}
}

// BenchmarkAblationRunqueueDesign quantifies the §2.2 premise — the
// reason per-core runqueues (and hence all four bugs) exist: a shared
// global runqueue taxes every context switch with contention that grows
// with the core count.
func BenchmarkAblationRunqueueDesign(b *testing.B) {
	for _, cores := range []int{8, 64} {
		b.Run(fmt.Sprintf("%dcores", cores), func(b *testing.B) {
			var sh, pc globalq.Result
			for i := 0; i < b.N; i++ {
				sh, pc = globalq.Experiment(cores, 4, 20*sim.Millisecond)
			}
			b.ReportMetric(100*sh.OverheadFraction(), "shared_overhead_pct")
			b.ReportMetric(100*pc.OverheadFraction(), "percore_overhead_pct")
		})
	}
}
